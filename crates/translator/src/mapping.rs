//! Mapping model-layer repair scripts to runtime-layer operations.
//!
//! The paper's framework has *hand-tailored support for translating APIs in
//! the Model Layer to ones in the Runtime Layer* (§4); this module implements
//! that translation for the client/server style. The mapping consults the
//! architectural model as it was before the repair so it can resolve element
//! types and the client's previous server group.

use crate::runtime_ops::{RuntimeOp, TranslationError};
use archmodel::style::{CLIENT_T, SERVER_GROUP_T, SERVER_T, SERVICE_CONN_T};
use archmodel::{ModelOp, System};

/// Derives the server-group name from a service-connector name of the form
/// `"<group>.Conn"`.
fn group_of_connector(name: &str) -> Option<&str> {
    name.strip_suffix(".Conn")
}

fn component_type(model: &System, name: &str) -> Option<String> {
    model
        .component_by_name(name)
        .and_then(|id| model.component(id).ok())
        .map(|c| c.ctype.clone())
}

/// Translates a committed repair script into the runtime operations that
/// realise it, in execution order.
///
/// `model_before` is the architectural model as it was when the repair was
/// planned (i.e. before the script was committed), which is needed to resolve
/// the types of removed elements and the previous attachment of moved
/// clients.
pub fn translate(
    model_before: &System,
    ops: &[ModelOp],
    min_bandwidth_bps: f64,
) -> Result<Vec<RuntimeOp>, TranslationError> {
    let mut out = Vec::new();
    for op in ops {
        match op {
            ModelOp::AddComponent {
                name,
                ctype,
                parent,
            } => {
                if ctype == SERVER_T {
                    let group = parent.clone().ok_or_else(|| {
                        TranslationError::NotTranslatable(format!(
                            "server {name} added without a containing group"
                        ))
                    })?;
                    // Recruit a spare server, point it at the group's queue,
                    // and activate it.
                    out.push(RuntimeOp::FindServer {
                        client: group.clone(),
                        bandwidth_threshold_bps: min_bandwidth_bps,
                    });
                    out.push(RuntimeOp::ConnectServer {
                        server: name.clone(),
                        group: group.clone(),
                    });
                    out.push(RuntimeOp::ActivateServer {
                        server: name.clone(),
                    });
                    // The group's load gauge must be refreshed to include the
                    // new replica.
                    out.push(RuntimeOp::DeleteGauge {
                        gauge: format!("load-gauge/{group}"),
                    });
                    out.push(RuntimeOp::CreateGauge {
                        gauge: format!("load-gauge/{group}"),
                    });
                } else if ctype == CLIENT_T || ctype == SERVER_GROUP_T {
                    // New top-level components appear only in deployment
                    // scripts, not in repairs; nothing to execute.
                }
            }
            ModelOp::RemoveComponent { name } => {
                match component_type(model_before, name).as_deref() {
                    Some(SERVER_T) => out.push(RuntimeOp::DeactivateServer {
                        server: name.clone(),
                    }),
                    Some(_) | None => {
                        // Removing anything other than a server has no direct
                        // runtime counterpart in this style.
                    }
                }
            }
            ModelOp::AddConnector { name, ctype } => {
                if ctype == SERVICE_CONN_T {
                    let group = group_of_connector(name).ok_or_else(|| {
                        TranslationError::NotTranslatable(format!(
                            "service connector {name} does not follow the <group>.Conn convention"
                        ))
                    })?;
                    out.push(RuntimeOp::CreateReqQueue {
                        group: group.to_string(),
                    });
                }
            }
            ModelOp::Attach {
                component,
                connector,
                ..
            } => {
                // A client attaching to a (different) service connector is a
                // client move.
                if component_type(model_before, component).as_deref() == Some(CLIENT_T) {
                    if let Some(group) = group_of_connector(connector) {
                        out.push(RuntimeOp::RemosGetFlow {
                            client: component.clone(),
                            server: group.to_string(),
                        });
                        out.push(RuntimeOp::MoveClient {
                            client: component.clone(),
                            to_group: group.to_string(),
                        });
                        // The bandwidth gauge watching the old pair must be
                        // destroyed and a new one created for the new pair.
                        out.push(RuntimeOp::DeleteGauge {
                            gauge: format!("bandwidth-gauge/{component}"),
                        });
                        out.push(RuntimeOp::CreateGauge {
                            gauge: format!("bandwidth-gauge/{component}"),
                        });
                    }
                }
            }
            ModelOp::MoveClientGroup { clients, to_group } => {
                // The class-level move: one Remos flow probe for the batch,
                // one routing update covering every client, and one
                // gauge-churn batch (the monitoring layer relocates the
                // moved clients' bandwidth gauges in a single sweep).
                if let Some(first) = clients.first() {
                    out.push(RuntimeOp::RemosGetFlow {
                        client: first.clone(),
                        server: to_group.clone(),
                    });
                    out.push(RuntimeOp::MoveClientGroup {
                        clients: clients.clone(),
                        to_group: to_group.clone(),
                    });
                    out.push(RuntimeOp::DeleteGauge {
                        gauge: "bandwidth-gauges/planner-batch".to_string(),
                    });
                    out.push(RuntimeOp::CreateGauge {
                        gauge: "bandwidth-gauges/planner-batch".to_string(),
                    });
                }
            }
            // Pure model bookkeeping: no runtime effect.
            ModelOp::Detach { .. }
            | ModelOp::AddRole { .. }
            | ModelOp::RemoveRole { .. }
            | ModelOp::AddPort { .. }
            | ModelOp::RemovePort { .. }
            | ModelOp::RemoveConnector { .. }
            | ModelOp::SetComponentProperty { .. }
            | ModelOp::SetConnectorProperty { .. }
            | ModelOp::SetRoleProperty { .. }
            | ModelOp::SetSystemProperty { .. } => {}
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use archmodel::style::ClientServerStyle;
    use archmodel::Transaction;
    use repair::operators::{add_server, move_client, move_client_group, remove_server};

    fn model() -> System {
        ClientServerStyle::example_system("storage", 2, 3, 6).unwrap()
    }

    #[test]
    fn add_server_translates_to_recruit_connect_activate() {
        let m = model();
        let mut tx = Transaction::new(&m);
        add_server(&mut tx, "ServerGrp1").unwrap();
        let runtime = translate(&m, tx.ops(), 10_000.0).unwrap();
        let kinds: Vec<&str> = runtime
            .iter()
            .map(|op| match op {
                RuntimeOp::FindServer { .. } => "find",
                RuntimeOp::ConnectServer { .. } => "connect",
                RuntimeOp::ActivateServer { .. } => "activate",
                RuntimeOp::DeleteGauge { .. } => "delete-gauge",
                RuntimeOp::CreateGauge { .. } => "create-gauge",
                _ => "other",
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                "find",
                "connect",
                "activate",
                "delete-gauge",
                "create-gauge"
            ]
        );
    }

    #[test]
    fn move_client_translates_to_move_with_gauge_churn() {
        let m = model();
        let mut tx = Transaction::new(&m);
        move_client(&mut tx, "User1", "ServerGrp2").unwrap();
        let runtime = translate(&m, tx.ops(), 10_000.0).unwrap();
        assert!(runtime.iter().any(|op| matches!(
            op,
            RuntimeOp::MoveClient { client, to_group }
                if client == "User1" && to_group == "ServerGrp2"
        )));
        assert!(runtime
            .iter()
            .any(|op| matches!(op, RuntimeOp::RemosGetFlow { .. })));
        assert!(runtime
            .iter()
            .any(|op| matches!(op, RuntimeOp::DeleteGauge { .. })));
        assert!(runtime
            .iter()
            .any(|op| matches!(op, RuntimeOp::CreateGauge { .. })));
    }

    #[test]
    fn move_client_group_translates_to_batched_move() {
        let m = model();
        let mut tx = Transaction::new(&m);
        let clients: Vec<String> = ["User1", "User3"].iter().map(|s| s.to_string()).collect();
        move_client_group(&mut tx, &clients, "ServerGrp2").unwrap();
        let runtime = translate(&m, tx.ops(), 10_000.0).unwrap();
        assert_eq!(
            runtime,
            vec![
                RuntimeOp::RemosGetFlow {
                    client: "User1".into(),
                    server: "ServerGrp2".into(),
                },
                RuntimeOp::MoveClientGroup {
                    clients: clients.clone(),
                    to_group: "ServerGrp2".into(),
                },
                RuntimeOp::DeleteGauge {
                    gauge: "bandwidth-gauges/planner-batch".into(),
                },
                RuntimeOp::CreateGauge {
                    gauge: "bandwidth-gauges/planner-batch".into(),
                },
            ]
        );
    }

    #[test]
    fn remove_server_translates_to_deactivate() {
        let m = model();
        let mut tx = Transaction::new(&m);
        remove_server(&mut tx, "ServerGrp1.Server3").unwrap();
        let runtime = translate(&m, tx.ops(), 10_000.0).unwrap();
        assert_eq!(
            runtime,
            vec![RuntimeOp::DeactivateServer {
                server: "ServerGrp1.Server3".into()
            }]
        );
    }

    #[test]
    fn creating_a_connector_creates_a_queue() {
        let m = model();
        let ops = vec![ModelOp::AddConnector {
            name: "ServerGrp3.Conn".into(),
            ctype: SERVICE_CONN_T.into(),
        }];
        let runtime = translate(&m, &ops, 10_000.0).unwrap();
        assert_eq!(
            runtime,
            vec![RuntimeOp::CreateReqQueue {
                group: "ServerGrp3".into()
            }]
        );
    }

    #[test]
    fn misnamed_connector_is_not_translatable() {
        let m = model();
        let ops = vec![ModelOp::AddConnector {
            name: "weird-connector".into(),
            ctype: SERVICE_CONN_T.into(),
        }];
        assert!(matches!(
            translate(&m, &ops, 10_000.0),
            Err(TranslationError::NotTranslatable(_))
        ));
    }

    #[test]
    fn property_updates_translate_to_nothing() {
        let m = model();
        let ops = vec![ModelOp::SetSystemProperty {
            property: "maxLatency".into(),
            value: archmodel::Value::Float(2.0),
        }];
        assert!(translate(&m, &ops, 10_000.0).unwrap().is_empty());
    }

    #[test]
    fn non_client_attach_translates_to_nothing() {
        let m = model();
        // Attaching a server group's port (e.g. when building a connector) is
        // not a client move.
        let ops = vec![ModelOp::Attach {
            component: "ServerGrp1".into(),
            port: "serve".into(),
            connector: "ServerGrp1.Conn".into(),
            role: "serverSide".into(),
        }];
        assert!(translate(&m, &ops, 10_000.0).unwrap().is_empty());
    }
}
