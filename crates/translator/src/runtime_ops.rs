//! Runtime-layer operators and queries (Table 1 of the paper).
//!
//! The environment manager exposes low-level routines for creating request
//! queues, activating and deactivating servers, and moving client
//! communications to a new queue, plus the Remos bandwidth query. The
//! translator converts model-layer repair scripts into sequences of these
//! operations; the adaptation framework executes them against the running
//! (simulated) system.

use serde::{Deserialize, Serialize};

/// A concrete operation on the running system (Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RuntimeOp {
    /// `createReqQueue()` — adds a logical request queue for a server group
    /// to the request-queue machine.
    CreateReqQueue {
        /// The server group the queue will serve.
        group: String,
    },
    /// `findServer([cli_ip, bw_thresh])` — finds a spare server with at least
    /// the given bandwidth to the client.
    FindServer {
        /// The requesting client.
        client: String,
        /// Minimum acceptable bandwidth (bits per second).
        bandwidth_threshold_bps: f64,
    },
    /// `moveClient(ReqQ newQ)` — moves a client to the new request queue.
    MoveClient {
        /// The client to move.
        client: String,
        /// The server group whose queue it should use from now on.
        to_group: String,
    },
    /// `moveClientGroup(clients, ReqQ newQ)` — the group-level planner's
    /// batched client move: every listed client is re-pointed at the new
    /// queue in one routing-table update, and their queued requests migrate
    /// with them. One reconfiguration handshake covers the whole batch, which
    /// is what makes fleet-scale migration affordable (a per-client
    /// `moveClient` sequence pays the full handshake per client).
    MoveClientGroup {
        /// The clients to move, in execution order.
        clients: Vec<String>,
        /// The server group whose queue they should use from now on.
        to_group: String,
    },
    /// `drainServer(group, age)` — one sweep of the `drainServer` tactic:
    /// every replica of the group wedged transmitting a reply older than
    /// `min_age_secs` is recycled in place (its stuck reply transfer is torn
    /// down and the replica immediately pulls fresh work). The wedged set is
    /// resolved at *execution* time, like `findServer` resolves spares, so
    /// the sweep also catches replicas that wedged while the repair was in
    /// flight.
    DrainStuckServers {
        /// The server group to sweep.
        group: String,
        /// Replies transmitting for longer than this (seconds since the
        /// reply transfer started — queue wait does not count) are wedged.
        min_age_secs: f64,
    },
    /// `connectServer(Server srv, ReqQ to)` — configures a server to pull
    /// client requests from the given queue.
    ConnectServer {
        /// The server being configured.
        server: String,
        /// The server group / queue it will serve.
        group: String,
    },
    /// `activateServer()` — the server should begin pulling requests.
    ActivateServer {
        /// The server to activate.
        server: String,
    },
    /// `deactivateServer()` — the server should stop pulling requests.
    DeactivateServer {
        /// The server to deactivate.
        server: String,
    },
    /// `remos_get_flow(clIP, svIP)` — query the predicted bandwidth between
    /// two machines.
    RemosGetFlow {
        /// Client machine.
        client: String,
        /// Server machine (or server group representative).
        server: String,
    },
    /// Delete a gauge that is no longer relevant after a reconfiguration
    /// (part of the repair's monitoring churn, §5.3).
    DeleteGauge {
        /// The gauge's name.
        gauge: String,
    },
    /// Create (or relocate) a gauge for the new configuration.
    CreateGauge {
        /// The gauge's name.
        gauge: String,
    },
}

impl RuntimeOp {
    /// A short human-readable form used in traces.
    pub fn describe(&self) -> String {
        match self {
            RuntimeOp::CreateReqQueue { group } => format!("createReqQueue({group})"),
            RuntimeOp::FindServer {
                client,
                bandwidth_threshold_bps,
            } => format!("findServer({client}, {bandwidth_threshold_bps:.0}bps)"),
            RuntimeOp::MoveClient { client, to_group } => {
                format!("moveClient({client} -> {to_group})")
            }
            RuntimeOp::MoveClientGroup { clients, to_group } => {
                format!("moveClientGroup({} clients -> {to_group})", clients.len())
            }
            RuntimeOp::DrainStuckServers {
                group,
                min_age_secs,
            } => format!("drainStuckServers({group}, >{min_age_secs:.0}s)"),
            RuntimeOp::ConnectServer { server, group } => {
                format!("connectServer({server}, {group})")
            }
            RuntimeOp::ActivateServer { server } => format!("activateServer({server})"),
            RuntimeOp::DeactivateServer { server } => format!("deactivateServer({server})"),
            RuntimeOp::RemosGetFlow { client, server } => {
                format!("remos_get_flow({client}, {server})")
            }
            RuntimeOp::DeleteGauge { gauge } => format!("deleteGauge({gauge})"),
            RuntimeOp::CreateGauge { gauge } => format!("createGauge({gauge})"),
        }
    }
}

/// Errors raised while executing runtime operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslationError {
    /// The operation referenced an element the runtime does not know.
    UnknownTarget(String),
    /// The runtime refused the operation (e.g. no spare server available).
    Rejected(String),
    /// The model operation has no runtime counterpart and should not have
    /// been sent to the runtime layer.
    NotTranslatable(String),
}

impl std::fmt::Display for TranslationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranslationError::UnknownTarget(t) => write!(f, "unknown runtime target: {t}"),
            TranslationError::Rejected(r) => write!(f, "runtime rejected operation: {r}"),
            TranslationError::NotTranslatable(o) => write!(f, "no runtime mapping for: {o}"),
        }
    }
}

impl std::error::Error for TranslationError {}

/// The environment manager: executes runtime operations against the running
/// system. Implemented over the simulated grid application by the adaptation
/// framework; a [`RecordingEnvironmentManager`] is provided for tests.
pub trait EnvironmentManager {
    /// Executes one operation at simulated time `now`, returning when the
    /// operation's effect is complete (seconds).
    fn execute(&mut self, now: f64, op: &RuntimeOp) -> Result<f64, TranslationError>;
}

/// An environment manager that records operations and completes them
/// instantly — useful for unit tests and dry runs.
#[derive(Debug, Default)]
pub struct RecordingEnvironmentManager {
    executed: Vec<RuntimeOp>,
}

impl RecordingEnvironmentManager {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The operations executed so far.
    pub fn executed(&self) -> &[RuntimeOp] {
        &self.executed
    }
}

impl EnvironmentManager for RecordingEnvironmentManager {
    fn execute(&mut self, now: f64, op: &RuntimeOp) -> Result<f64, TranslationError> {
        self.executed.push(op.clone());
        Ok(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_matches_table1_names() {
        assert_eq!(
            RuntimeOp::CreateReqQueue {
                group: "ServerGrp2".into()
            }
            .describe(),
            "createReqQueue(ServerGrp2)"
        );
        assert_eq!(
            RuntimeOp::MoveClient {
                client: "User3".into(),
                to_group: "ServerGrp2".into()
            }
            .describe(),
            "moveClient(User3 -> ServerGrp2)"
        );
        assert!(RuntimeOp::RemosGetFlow {
            client: "C3".into(),
            server: "S1".into()
        }
        .describe()
        .starts_with("remos_get_flow"));
    }

    #[test]
    fn recording_manager_captures_ops() {
        let mut mgr = RecordingEnvironmentManager::new();
        let done = mgr
            .execute(
                5.0,
                &RuntimeOp::ActivateServer {
                    server: "S4".into(),
                },
            )
            .unwrap();
        assert_eq!(done, 5.0);
        assert_eq!(mgr.executed().len(), 1);
    }

    #[test]
    fn errors_render_meaningfully() {
        assert!(TranslationError::Rejected("no spare server".into())
            .to_string()
            .contains("no spare server"));
        assert!(TranslationError::UnknownTarget("S9".into())
            .to_string()
            .contains("S9"));
    }
}
