//! # translator — model-layer ↔ runtime-layer translation
//!
//! The final component of the adaptation framework is *a translator that
//! interprets the actions of the repair scripts at the model layer as
//! operations on the actual system at the runtime layer* (§3.3, Figure 1 item
//! 5). This crate provides:
//!
//! * [`runtime_ops`] — the Table 1 environment-manager operators and queries
//!   (`createReqQueue`, `findServer`, `moveClient`, `connectServer`,
//!   `activateServer`, `deactivateServer`, `remos_get_flow`) plus the gauge
//!   churn a reconfiguration entails,
//! * [`mapping`] — translation of committed model change-sets into runtime
//!   operation sequences,
//! * [`cost`] — the repair execution cost model reproducing the paper's
//!   ~30 s repair time, with gauge-caching and Remos-pre-query ablations.

#![warn(missing_docs)]

pub mod cost;
pub mod mapping;
pub mod runtime_ops;

pub use cost::RepairCostModel;
pub use mapping::translate;
pub use runtime_ops::{
    EnvironmentManager, RecordingEnvironmentManager, RuntimeOp, TranslationError,
};
