//! Control-plane self-observability: a lightweight metrics registry with
//! RAII span timers, turned inward onto the adaptation framework itself.
//!
//! The `tracestore` crate observes the *simulated system*; this crate
//! observes the *framework* — where a control tick spends its time, how many
//! allocator epochs and probe solves a run costs, how large the planner's
//! class census is. Two hard design rules keep the rest of the repo's
//! determinism guarantees intact:
//!
//! 1. **Deterministic counters and gauges are separated from wall-clock
//!    histograms.** Counters and gauges record simulation behaviour (solve
//!    counts, op counts, census sizes) and are byte-identical across worker
//!    counts; they may be folded into sweep reports and trace stores.
//!    Histograms record wall-clock nanoseconds and are explicitly
//!    nondeterministic; they surface only through [`PerfReport`], never
//!    through a deterministic artifact.
//! 2. **The default sink is a disabled [`NullRegistry`]** and every emission
//!    site guards on [`MetricsSink::enabled`], so an unmetered run does no
//!    extra work and all existing outputs stay byte-identical.
//!
//! Metric names are interned [`archmodel::Key`]s: comparison is pointer
//! equality, ordering is string order, so snapshot iteration over a
//! `BTreeMap<Key, _>` is deterministic name order.

use archmodel::Key;
use serde::{Content, Serialize};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A consumer of control-plane metrics.
///
/// All methods take `&self` so one sink can be shared across the framework
/// and its helpers; implementations use interior mutability. Emission sites
/// skip metric construction entirely when [`enabled`](Self::enabled) is
/// false — that short-circuit is what keeps unmetered runs byte-identical.
pub trait MetricsSink: Send + Sync {
    /// Whether this sink records anything at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Adds `delta` to the counter named `key`.
    fn add(&self, key: Key, delta: u64);

    /// Sets the counter named `key` to an absolute value (used when a
    /// component keeps its own cheap counter and the framework publishes it
    /// wholesale).
    fn set_counter(&self, key: Key, value: u64);

    /// Sets the gauge named `key`.
    fn set_gauge(&self, key: Key, value: f64);

    /// Records one wall-clock duration observation into the histogram named
    /// `key`. Histogram data is nondeterministic by construction and must
    /// never feed a deterministic artifact.
    fn observe_nanos(&self, key: Key, nanos: u64);

    /// The deterministic part of the registry (counters and gauges), if
    /// this sink retains one. The default (and the [`NullRegistry`]) has
    /// nothing to report.
    fn deterministic_snapshot(&self) -> Option<MetricsSnapshot> {
        None
    }
}

/// A cheaply cloneable metrics handle.
pub type SharedMetrics = Arc<dyn MetricsSink>;

/// The default sink: disabled, records nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRegistry;

impl MetricsSink for NullRegistry {
    fn enabled(&self) -> bool {
        false
    }

    fn add(&self, _key: Key, _delta: u64) {}
    fn set_counter(&self, _key: Key, _value: u64) {}
    fn set_gauge(&self, _key: Key, _value: f64) {}
    fn observe_nanos(&self, _key: Key, _nanos: u64) {}
}

/// A fresh [`NullRegistry`] handle — the default metrics target.
pub fn null_metrics() -> SharedMetrics {
    Arc::new(NullRegistry)
}

/// A wall-clock duration histogram: count/sum/min/max plus power-of-two
/// buckets (bucket `i` holds observations whose nanosecond value has bit
/// length `i`), giving an approximate p95 without storing samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    count: u64,
    sum_nanos: u64,
    min_nanos: u64,
    max_nanos: u64,
    buckets: [u64; 64],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum_nanos: 0,
            min_nanos: u64::MAX,
            max_nanos: 0,
            buckets: [0; 64],
        }
    }
}

impl Histogram {
    fn observe(&mut self, nanos: u64) {
        self.count += 1;
        self.sum_nanos = self.sum_nanos.saturating_add(nanos);
        self.min_nanos = self.min_nanos.min(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
        let bucket = (64 - nanos.leading_zeros()) as usize; // bit length, 0..=64
        self.buckets[bucket.min(63)] += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations, nanoseconds.
    pub fn sum_nanos(&self) -> u64 {
        self.sum_nanos
    }

    /// Smallest observation, nanoseconds (0 when empty).
    pub fn min_nanos(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_nanos
        }
    }

    /// Largest observation, nanoseconds.
    pub fn max_nanos(&self) -> u64 {
        self.max_nanos
    }

    /// Mean observation, nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_nanos as f64 / self.count as f64
        }
    }

    /// Approximate 95th percentile: the upper bound of the power-of-two
    /// bucket containing the 95th-percentile observation.
    pub fn p95_nanos(&self) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count as f64 * 0.95).ceil() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket i holds values with bit length i: upper bound 2^i - 1.
                return if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
            }
        }
        self.max_nanos
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, f64>,
    histograms: BTreeMap<Key, Histogram>,
}

/// The concrete registry: counters, gauges, and wall-clock histograms keyed
/// by interned [`Key`]s. Clones share storage, so the registry can be kept
/// for reading while a [`SharedMetrics`] handle is given to the emitters.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Inner>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A [`SharedMetrics`] handle onto this registry.
    pub fn handle(&self) -> SharedMetrics {
        Arc::new(self.clone())
    }

    /// The current value of one counter (0 if never touched).
    pub fn counter(&self, key: Key) -> u64 {
        self.lock().counters.get(&key).copied().unwrap_or(0)
    }

    /// All counters, in deterministic name order.
    pub fn counters(&self) -> Vec<(Key, u64)> {
        self.lock().counters.iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// All gauges, in deterministic name order.
    pub fn gauges(&self) -> Vec<(Key, f64)> {
        self.lock().gauges.iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// The deterministic section: counters and gauges, name-ordered. This is
    /// what may be folded into sweep reports and trace stores.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.as_str().to_string(), *v))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.as_str().to_string(), *v))
                .collect(),
        }
    }

    /// The nondeterministic section: one row per wall-clock histogram, in
    /// name order. Timings vary run to run — never byte-compare this.
    pub fn perf_report(&self) -> PerfReport {
        let inner = self.lock();
        PerfReport {
            rows: inner
                .histograms
                .iter()
                .map(|(k, h)| PerfRow {
                    name: k.as_str().to_string(),
                    count: h.count(),
                    total_ms: h.sum_nanos() as f64 / 1e6,
                    mean_us: h.mean_nanos() / 1e3,
                    p95_us: h.p95_nanos() as f64 / 1e3,
                    max_us: h.max_nanos() as f64 / 1e3,
                })
                .collect(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("metrics registry lock")
    }
}

impl MetricsSink for MetricsRegistry {
    fn add(&self, key: Key, delta: u64) {
        *self.lock().counters.entry(key).or_insert(0) += delta;
    }

    fn set_counter(&self, key: Key, value: u64) {
        self.lock().counters.insert(key, value);
    }

    fn set_gauge(&self, key: Key, value: f64) {
        self.lock().gauges.insert(key, value);
    }

    fn observe_nanos(&self, key: Key, nanos: u64) {
        self.lock()
            .histograms
            .entry(key)
            .or_default()
            .observe(nanos);
    }

    fn deterministic_snapshot(&self) -> Option<MetricsSnapshot> {
        Some(self.snapshot())
    }
}

/// A registry plus a [`SharedMetrics`] handle onto it: hand the handle to
/// the framework, keep the registry to read what it recorded.
pub fn shared_registry() -> (MetricsRegistry, SharedMetrics) {
    let registry = MetricsRegistry::new();
    let handle = registry.handle();
    (registry, handle)
}

/// An RAII wall-clock timer: construct at the top of a phase, drops into the
/// named histogram when it leaves scope. When the sink is disabled the span
/// is inert — it never reads the clock, never clones the handle.
pub struct Span {
    active: Option<(SharedMetrics, Key, Instant)>,
}

impl Span {
    /// Starts timing `key`, or does nothing if `sink` is disabled.
    pub fn start(sink: &SharedMetrics, key: Key) -> Span {
        Span {
            active: sink
                .enabled()
                .then(|| (Arc::clone(sink), key, Instant::now())),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((sink, key, started)) = self.active.take() {
            let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            sink.observe_nanos(key, nanos);
        }
    }
}

/// The deterministic counter/gauge section of a registry, name-ordered.
/// Serialises as `{"counters": {...}, "gauges": {...}}` with integer counter
/// values, so equal counters give byte-equal JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter name → value, in name order.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value, in name order.
    pub gauges: Vec<(String, f64)>,
}

impl Serialize for MetricsSnapshot {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            (
                "counters".to_string(),
                Content::Map(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Content::U64(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_string(),
                Content::Map(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Content::F64(*v)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// One histogram's wall-clock summary in a [`PerfReport`].
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Metric name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Total time spent, milliseconds.
    pub total_ms: f64,
    /// Mean observation, microseconds.
    pub mean_us: f64,
    /// Approximate 95th percentile, microseconds.
    pub p95_us: f64,
    /// Largest observation, microseconds.
    pub max_us: f64,
}

impl Serialize for PerfRow {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("name".to_string(), Content::Str(self.name.clone())),
            ("count".to_string(), Content::U64(self.count)),
            ("total_ms".to_string(), Content::F64(self.total_ms)),
            ("mean_us".to_string(), Content::F64(self.mean_us)),
            ("p95_us".to_string(), Content::F64(self.p95_us)),
            ("max_us".to_string(), Content::F64(self.max_us)),
        ])
    }
}

/// The nondeterministic wall-clock section of a registry: one row per
/// histogram, name-ordered. Values are timings and vary run to run.
#[derive(Debug, Clone, Default)]
pub struct PerfReport {
    /// One summary row per histogram.
    pub rows: Vec<PerfRow>,
}

impl PerfReport {
    /// Rows sorted by total time spent, descending — "where did it go?"
    pub fn by_total_time(&self) -> Vec<&PerfRow> {
        let mut rows: Vec<&PerfRow> = self.rows.iter().collect();
        rows.sort_by(|a, b| {
            b.total_ms
                .partial_cmp(&a.total_ms)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        rows
    }
}

impl Serialize for PerfReport {
    fn to_content(&self) -> Content {
        Content::Map(vec![(
            "rows".to_string(),
            Content::Seq(self.rows.iter().map(|r| r.to_content()).collect()),
        )])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_registry_is_disabled_and_inert() {
        let sink = null_metrics();
        assert!(!sink.enabled());
        let key = Key::new("test.null");
        sink.add(key, 5);
        sink.set_counter(key, 9);
        sink.set_gauge(key, 1.5);
        sink.observe_nanos(key, 100);
        assert!(sink.deterministic_snapshot().is_none());
    }

    #[test]
    fn counters_accumulate_and_snapshot_in_name_order() {
        let (registry, handle) = shared_registry();
        let b = Key::new("test.b");
        let a = Key::new("test.a");
        handle.add(b, 2);
        handle.add(b, 3);
        handle.add(a, 1);
        handle.set_counter(a, 10);
        handle.set_gauge(Key::new("test.g"), 2.5);
        assert_eq!(registry.counter(b), 5);
        assert_eq!(registry.counter(a), 10);
        let snapshot = registry.snapshot();
        assert_eq!(
            snapshot.counters,
            vec![("test.a".to_string(), 10), ("test.b".to_string(), 5)]
        );
        assert_eq!(snapshot.gauges, vec![("test.g".to_string(), 2.5)]);
        assert_eq!(handle.deterministic_snapshot(), Some(snapshot));
    }

    #[test]
    fn histogram_summary_statistics_are_sane() {
        let mut h = Histogram::default();
        assert_eq!(h.p95_nanos(), 0);
        assert_eq!(h.min_nanos(), 0);
        for nanos in [100u64, 200, 300, 400, 10_000] {
            h.observe(nanos);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_nanos(), 11_000);
        assert_eq!(h.min_nanos(), 100);
        assert_eq!(h.max_nanos(), 10_000);
        assert!((h.mean_nanos() - 2_200.0).abs() < 1e-9);
        // p95 rank 5 of 5 lands in the bucket holding 10_000 (bit length
        // 14): upper bound 2^14 - 1.
        assert_eq!(h.p95_nanos(), (1 << 14) - 1);
    }

    #[test]
    fn span_records_into_histogram_only_when_enabled() {
        let (registry, handle) = shared_registry();
        let key = Key::new("test.span");
        {
            let _span = Span::start(&handle, key);
        }
        let report = registry.perf_report();
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].name, "test.span");
        assert_eq!(report.rows[0].count, 1);

        let null = null_metrics();
        {
            let _span = Span::start(&null, key);
        }
        // Nothing to check on the null side — the point is it cannot panic
        // and records nothing anywhere.
    }

    #[test]
    fn perf_report_orders_by_total_time() {
        let (registry, handle) = shared_registry();
        handle.observe_nanos(Key::new("test.cheap"), 10);
        handle.observe_nanos(Key::new("test.dear"), 1_000_000);
        let report = registry.perf_report();
        let ordered = report.by_total_time();
        assert_eq!(ordered[0].name, "test.dear");
        assert_eq!(ordered[1].name, "test.cheap");
    }

    #[test]
    fn snapshot_serialises_as_ordered_maps() {
        let (registry, handle) = shared_registry();
        handle.add(Key::new("test.ser.n"), 7);
        handle.set_gauge(Key::new("test.ser.g"), 0.5);
        let content = registry.snapshot().to_content();
        match content {
            Content::Map(fields) => {
                assert_eq!(fields[0].0, "counters");
                assert_eq!(fields[1].0, "gauges");
                match &fields[0].1 {
                    Content::Map(counters) => {
                        assert!(counters
                            .iter()
                            .any(|(k, v)| k == "test.ser.n" && *v == Content::U64(7)));
                    }
                    other => panic!("counters not a map: {other:?}"),
                }
            }
            other => panic!("snapshot not a map: {other:?}"),
        }
    }
}
