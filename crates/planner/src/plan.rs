//! The bulk reassignment planner.
//!
//! Where the paper's repair engine picks *one* violation and runs a
//! per-element tactic, the group planner looks at the whole violation report
//! and emits a single batched plan of group tactics:
//!
//! * **moveClientGroup** — every squeezed client of a network-position class
//!   is re-homed in one pass (one routing-table update, one gauge-churn
//!   batch), where per-client `moveClient` repairs would pay the full ~30 s
//!   handshake per client;
//! * **drainServer** — replicas of a vacated or overloaded group wedged
//!   transmitting replies over a collapsed path are recycled in place, so
//!   the group's capacity returns with the plan instead of hours later;
//! * **rebalanceGroups** — spare recruitment plus a water-filling pass that
//!   moves client classes from over-pressured groups (clients per live
//!   replica) to under-pressured ones, subject to the class's predicted
//!   bandwidth clearing the task-layer minimum.
//!
//! The planner is a pure function of its [`PlannerInput`] (plus the static
//! [`ClassIndex`]), all iteration is over ordered maps, and the produced
//! plan carries both the model operations (committed by the framework) and
//! the batched runtime operations — so planned repairs replay
//! bit-identically for any worker count.

use crate::classes::ClassIndex;
use crate::probes::class_remos;
use archmodel::constraint::CheckReport;
use archmodel::style::ClientServerStyle;
use archmodel::{ModelOp, System, Transaction};
use gridapp::GridApp;
use repair::operators::{add_server, move_client_group};
use repair::tactic::client_of_violation;
use std::collections::{BTreeMap, BTreeSet};
use translator::RuntimeOp;

/// Task-layer thresholds the planner plans against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerThresholds {
    /// Minimum acceptable client bandwidth (bits per second).
    pub min_bandwidth_bps: f64,
    /// Queue length above which a group counts as overloaded.
    pub max_server_load: f64,
    /// The latency bound; replies stuck longer than this count as wedged.
    pub max_latency_secs: f64,
}

/// One server group's state as the planner sees it.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GroupSnapshot {
    /// The group's load (pending-request queue length) per the model.
    pub load: f64,
    /// Live, active replicas currently serving the group.
    pub live_servers: usize,
    /// Replicas wedged transmitting a reply older than the latency bound.
    pub stuck_servers: usize,
}

/// Everything the planner consumes for one planning decision. Assembled from
/// the live application by [`PlannerInput::gather`]; unit tests construct it
/// directly.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerInput {
    /// Current time (seconds) — the damping clock.
    pub now_secs: f64,
    /// The thresholds in force.
    pub thresholds: PlannerThresholds,
    /// Per-group state, in name order.
    pub groups: BTreeMap<String, GroupSnapshot>,
    /// Spare servers available for recruitment (pool is global, as in
    /// `findServer`).
    pub spare_servers: usize,
    /// Class-level Remos predictions: `(client class, group)` → flow, `None`
    /// when the group is unreachable (no live replica).
    pub class_bandwidth: BTreeMap<(usize, String), Option<f64>>,
    /// Clients named by latency/bandwidth violations, sorted and deduplicated.
    pub violating_clients: Vec<String>,
    /// Groups named by serverLoad violations, sorted and deduplicated.
    pub overloaded_groups: Vec<String>,
    /// Every client's current group assignment.
    pub client_groups: BTreeMap<String, String>,
}

impl PlannerInput {
    /// Assembles the planner's view from the running application, the
    /// current model, and a violation report.
    pub fn gather(
        app: &GridApp,
        index: &ClassIndex,
        model: &System,
        report: &CheckReport,
        thresholds: PlannerThresholds,
        now_secs: f64,
    ) -> PlannerInput {
        let mut violating: BTreeSet<String> = BTreeSet::new();
        let mut overloaded: BTreeSet<String> = BTreeSet::new();
        for violation in &report.violations {
            match violation.invariant.as_str() {
                "latency" | "bandwidth" => {
                    if let Some(client) = client_of_violation(model, violation) {
                        violating.insert(client);
                    }
                }
                "serverLoad" => {
                    overloaded.insert(violation.subject_name.clone());
                }
                _ => {}
            }
        }
        let mut groups = BTreeMap::new();
        for group in app.group_names() {
            let load = model
                .component_by_name(&group)
                .and_then(|id| model.component(id).ok())
                .and_then(|c| c.properties.get_f64(archmodel::style::props::LOAD))
                .unwrap_or(0.0);
            groups.insert(
                group.clone(),
                GroupSnapshot {
                    load,
                    live_servers: app.active_servers(&group).len(),
                    stuck_servers: app
                        .stuck_sending_servers(&group, thresholds.max_latency_secs)
                        .len(),
                },
            );
        }
        let mut class_bandwidth = BTreeMap::new();
        for class in index.client_classes() {
            for group in groups.keys() {
                class_bandwidth.insert(
                    (class.id, group.clone()),
                    class_remos(app, index, class, group),
                );
            }
        }
        let mut client_groups = BTreeMap::new();
        for client in app.client_names() {
            if let Ok(group) = app.client_group(&client) {
                client_groups.insert(client, group);
            }
        }
        PlannerInput {
            now_secs,
            thresholds,
            groups,
            spare_servers: app.spare_servers().len(),
            class_bandwidth,
            violating_clients: violating.into_iter().collect(),
            overloaded_groups: overloaded.into_iter().collect(),
            client_groups,
        }
    }

    fn bandwidth(&self, class: usize, group: &str) -> f64 {
        self.class_bandwidth
            .get(&(class, group.to_string()))
            .copied()
            .flatten()
            .unwrap_or(0.0)
    }
}

/// A batched group-level repair ready for the framework to commit and
/// execute.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupPlan {
    /// The invariant family that triggered the plan (for the trace).
    pub invariant: String,
    /// A short subject describing the plan's scope.
    pub subject: String,
    /// Model operations realising the plan (committed on completion).
    pub model_ops: Vec<ModelOp>,
    /// Batched runtime operations (executed on completion).
    pub runtime_ops: Vec<RuntimeOp>,
    /// The group tactics that contributed, in application order.
    pub tactics: Vec<String>,
    /// Human-readable description for the trace.
    pub description: String,
}

/// One planned class move.
#[derive(Debug, Clone)]
struct ClassMove {
    from: String,
    to: String,
    members: Vec<String>,
}

/// The group-level planner: the [`ClassIndex`] plus per-subject damping
/// state.
pub struct GroupPlanner {
    index: ClassIndex,
    damping_secs: Option<f64>,
    last_planned: BTreeMap<String, f64>,
}

impl GroupPlanner {
    /// Creates a planner over a class index with an optional damping window
    /// (seconds) per planned subject.
    pub fn new(index: ClassIndex, damping_secs: Option<f64>) -> GroupPlanner {
        GroupPlanner {
            index,
            damping_secs,
            last_planned: BTreeMap::new(),
        }
    }

    /// The planner's class index.
    pub fn index(&self) -> &ClassIndex {
        &self.index
    }

    fn allows(&self, key: &str, now: f64) -> bool {
        match (self.damping_secs, self.last_planned.get(key)) {
            (Some(window), Some(&last)) => now - last >= window,
            _ => true,
        }
    }

    /// Produces a batched plan for the violations in `input`, or `None` when
    /// no group tactic applies (the caller falls back to per-element
    /// repair). Pure in its inputs apart from the damping clock.
    pub fn plan(&mut self, model: &System, input: &PlannerInput) -> Option<GroupPlan> {
        let thresholds = input.thresholds;
        let mut damping_keys: Vec<String> = Vec::new();
        let mut tactics: Vec<String> = Vec::new();
        let mut notes: Vec<String> = Vec::new();

        // -- moveClientGroup: re-home every squeezed class in one pass. ----
        let mut moves: Vec<ClassMove> = Vec::new();
        let mut moved_classes: BTreeSet<usize> = BTreeSet::new();
        let mut violating_classes: BTreeSet<usize> = BTreeSet::new();
        for client in &input.violating_clients {
            if let Some(id) = self.index.client_class_of(client) {
                violating_classes.insert(id);
            }
        }
        for &id in &violating_classes {
            let class = self.index.client_class(id)?;
            let sources: BTreeSet<&String> = class
                .members
                .iter()
                .filter(|m| input.violating_clients.binary_search(m).is_ok())
                .filter_map(|m| input.client_groups.get(m))
                .collect();
            for from in sources {
                // Precondition (the class-level fixBandwidth guard): the
                // class's flow to its current group is below the minimum.
                if input.bandwidth(id, from) >= thresholds.min_bandwidth_bps {
                    continue;
                }
                // findGoodSGrp over the classes' alternatives, skipping
                // groups that are themselves overloaded.
                let mut best: Option<(&String, f64)> = None;
                for (group, snapshot) in &input.groups {
                    if group == from || snapshot.load > thresholds.max_server_load {
                        continue;
                    }
                    let bw = input.bandwidth(id, group);
                    if bw <= thresholds.min_bandwidth_bps {
                        continue;
                    }
                    if best.is_none_or(|(_, b)| bw > b) {
                        best = Some((group, bw));
                    }
                }
                let Some((to, bw)) = best else { continue };
                let key = format!("move/class{id}/{from}");
                if !self.allows(&key, input.now_secs) {
                    continue;
                }
                let members: Vec<String> = class
                    .members
                    .iter()
                    .filter(|m| input.client_groups.get(*m) == Some(from))
                    .cloned()
                    .collect();
                if members.is_empty() {
                    continue;
                }
                damping_keys.push(key);
                notes.push(format!(
                    "class {id} ({} clients) {from} -> {to} at {bw:.0} bps",
                    members.len()
                ));
                moves.push(ClassMove {
                    from: from.clone(),
                    to: to.clone(),
                    members,
                });
                moved_classes.insert(id);
            }
        }
        if !moves.is_empty() {
            tactics.push("moveClientGroup".to_string());
        }
        let bandwidth_moves = moves.len();

        // -- drainServer: recycle replicas wedged on a collapsed path. -----
        let mut drain_groups: BTreeSet<String> = BTreeSet::new();
        for mv in &moves {
            if input
                .groups
                .get(&mv.from)
                .is_some_and(|g| g.stuck_servers > 0)
            {
                drain_groups.insert(mv.from.clone());
            }
        }

        // -- rebalanceGroups: recruit spares, then water-fill classes. -----
        let mut recruits: Vec<(String, usize)> = Vec::new();
        let mut spares_left = input.spare_servers;
        for group in &input.overloaded_groups {
            let Some(snapshot) = input.groups.get(group) else {
                continue;
            };
            let key = format!("load/{group}");
            if !self.allows(&key, input.now_secs) {
                continue;
            }
            let mut acted = false;
            if spares_left > 0 {
                // One spare per multiple of the overload bound, capped per
                // plan: recruitment is the slow serial part of a repair
                // (find/connect/activate per replica), and the damping
                // window lets the next plan recruit more if the backlog
                // persists.
                const RECRUIT_BATCH_MAX: usize = 6;
                let need = ((snapshot.load / thresholds.max_server_load.max(1.0)) as usize)
                    .clamp(1, RECRUIT_BATCH_MAX);
                let recruit = need.min(spares_left);
                spares_left -= recruit;
                notes.push(format!("recruited {recruit} spares into {group}"));
                recruits.push((group.clone(), recruit));
                acted = true;
            }
            if snapshot.stuck_servers > 0 {
                drain_groups.insert(group.clone());
                acted = true;
            }
            if acted {
                damping_keys.push(key);
            }
        }
        if !recruits.is_empty() {
            tactics.push("rebalanceGroups".to_string());
        }

        // Water-filling: while one overloaded group carries far more clients
        // per live replica than the best under-loaded receiver, move its
        // smallest whole class across (bandwidth permitting).
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for group in input.groups.keys() {
            counts.insert(group.clone(), 0);
        }
        for group in input.client_groups.values() {
            *counts.entry(group.clone()).or_insert(0) += 1;
        }
        for mv in &moves {
            if let Some(count) = counts.get_mut(&mv.from) {
                *count = count.saturating_sub(mv.members.len());
            }
            *counts.entry(mv.to.clone()).or_insert(0) += mv.members.len();
        }
        let mut live: BTreeMap<String, usize> = input
            .groups
            .iter()
            .map(|(g, s)| (g.clone(), s.live_servers))
            .collect();
        for (group, k) in &recruits {
            *live.entry(group.clone()).or_insert(0) += k;
        }
        let pressure =
            |counts: &BTreeMap<String, usize>, live: &BTreeMap<String, usize>, g: &str| {
                counts.get(g).copied().unwrap_or(0) as f64
                    / live.get(g).copied().unwrap_or(0).max(1) as f64
            };
        let mut rebalanced = 0usize;
        for _ in 0..8 {
            // Highest-pressure overloaded group vs lowest-pressure healthy
            // receiver, names breaking ties.
            let hi = input
                .overloaded_groups
                .iter()
                .filter(|g| self.allows(&format!("rebalance/{g}"), input.now_secs))
                .max_by(|a, b| {
                    pressure(&counts, &live, a)
                        .total_cmp(&pressure(&counts, &live, b))
                        .then_with(|| b.cmp(a))
                });
            let Some(hi) = hi else { break };
            let lo = input
                .groups
                .iter()
                .filter(|(g, s)| *g != hi && s.load <= thresholds.max_server_load)
                .map(|(g, _)| g)
                .min_by(|a, b| {
                    pressure(&counts, &live, a)
                        .total_cmp(&pressure(&counts, &live, b))
                        .then_with(|| a.cmp(b))
                });
            let Some(lo) = lo else { break };
            if pressure(&counts, &live, hi) <= 1.5 * pressure(&counts, &live, lo) + 1.0 {
                break;
            }
            // Smallest whole class still homed on `hi` whose bandwidth to
            // `lo` clears the minimum.
            let candidate = self
                .index
                .client_classes()
                .iter()
                .filter(|c| !moved_classes.contains(&c.id))
                .filter(|c| {
                    c.members
                        .iter()
                        .all(|m| input.client_groups.get(m) == Some(hi))
                })
                .filter(|c| input.bandwidth(c.id, lo) > thresholds.min_bandwidth_bps)
                .min_by_key(|c| (c.members.len(), c.id));
            let Some(class) = candidate else { break };
            *counts.entry(hi.clone()).or_insert(0) -= class.members.len();
            *counts.entry(lo.clone()).or_insert(0) += class.members.len();
            notes.push(format!(
                "rebalanced class {} ({} clients) {hi} -> {lo}",
                class.id,
                class.members.len()
            ));
            moves.push(ClassMove {
                from: hi.clone(),
                to: lo.clone(),
                members: class.members.clone(),
            });
            moved_classes.insert(class.id);
            damping_keys.push(format!("rebalance/{hi}"));
            rebalanced += 1;
        }
        if rebalanced > 0 && !tactics.iter().any(|t| t == "rebalanceGroups") {
            tactics.push("rebalanceGroups".to_string());
        }
        if !drain_groups.is_empty() {
            tactics.push("drainServer".to_string());
            for group in &drain_groups {
                notes.push(format!("drained wedged replicas of {group}"));
            }
        }

        if moves.is_empty() && recruits.is_empty() && drain_groups.is_empty() {
            return None;
        }

        // -- Realise the plan: model ops through the style operators. ------
        let mut tx = Transaction::new(model);
        // One `moveClientGroup` model op per class move: the recorded
        // change-set (and `finish_repair`'s commit replay over it) is
        // proportional to moved *classes*, not members — at 50k clients the
        // per-member op list alone dominated the bulk-repair commit. The op
        // itself skips members missing from the model.
        for mv in &moves {
            if move_client_group(&mut tx, &mv.members, &mv.to).is_err() {
                return None;
            }
        }
        let mut recruited_servers: Vec<(String, Vec<String>)> = Vec::new();
        for (group, k) in &recruits {
            let mut names = Vec::new();
            for _ in 0..*k {
                match add_server(&mut tx, group) {
                    Ok(name) => names.push(name),
                    Err(_) => return None,
                }
            }
            recruited_servers.push((group.clone(), names));
        }
        if !ClientServerStyle::validate(tx.working()).is_empty() {
            return None;
        }

        // -- Batched runtime ops. ------------------------------------------
        let mut runtime_ops = Vec::new();
        if let Some(first) = moves.first() {
            runtime_ops.push(RuntimeOp::RemosGetFlow {
                client: first.members[0].clone(),
                server: first.to.clone(),
            });
        }
        // All classes headed to the same group share one routing update: a
        // `moveClientGroup` re-binds queue routing entries in a single
        // message, so the batch pays one handshake per *target*, not one per
        // class (clients keep their class-internal order, classes keep plan
        // order).
        let mut batches: BTreeMap<&String, Vec<String>> = BTreeMap::new();
        for mv in &moves {
            batches
                .entry(&mv.to)
                .or_default()
                .extend(mv.members.iter().cloned());
        }
        for (to_group, clients) in batches {
            runtime_ops.push(RuntimeOp::MoveClientGroup {
                clients,
                to_group: to_group.clone(),
            });
        }
        if !moves.is_empty() {
            // One gauge-churn batch covers every moved client's bandwidth
            // gauge: the monitoring layer relocates them in a single sweep.
            runtime_ops.push(RuntimeOp::DeleteGauge {
                gauge: "bandwidth-gauges/planner-batch".to_string(),
            });
            runtime_ops.push(RuntimeOp::CreateGauge {
                gauge: "bandwidth-gauges/planner-batch".to_string(),
            });
        }
        for group in &drain_groups {
            runtime_ops.push(RuntimeOp::DrainStuckServers {
                group: group.clone(),
                min_age_secs: thresholds.max_latency_secs,
            });
        }
        for (group, names) in &recruited_servers {
            for name in names {
                runtime_ops.push(RuntimeOp::FindServer {
                    client: group.clone(),
                    bandwidth_threshold_bps: thresholds.min_bandwidth_bps,
                });
                runtime_ops.push(RuntimeOp::ConnectServer {
                    server: name.clone(),
                    group: group.clone(),
                });
                runtime_ops.push(RuntimeOp::ActivateServer {
                    server: name.clone(),
                });
            }
            runtime_ops.push(RuntimeOp::DeleteGauge {
                gauge: format!("load-gauge/{group}"),
            });
            runtime_ops.push(RuntimeOp::CreateGauge {
                gauge: format!("load-gauge/{group}"),
            });
        }

        for key in damping_keys {
            self.last_planned.insert(key, input.now_secs);
        }
        let moved_clients: usize = moves.iter().map(|m| m.members.len()).sum();
        let invariant = if bandwidth_moves > 0 {
            "bandwidth"
        } else {
            "serverLoad"
        };
        Some(GroupPlan {
            invariant: invariant.to_string(),
            subject: format!(
                "{} classes / {moved_clients} clients / {} groups",
                moved_classes.len(),
                input.groups.len()
            ),
            model_ops: tx.ops().to_vec(),
            runtime_ops,
            tactics,
            description: notes.join("; "),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::ClassIndex;
    use gridapp::{Testbed, TestbedSpec};

    fn thresholds() -> PlannerThresholds {
        PlannerThresholds {
            min_bandwidth_bps: 10_000.0,
            max_server_load: 6.0,
            max_latency_secs: 2.0,
        }
    }

    /// A paper-shaped model plus input in which User3/User4 are squeezed on
    /// ServerGrp1 while ServerGrp2 is healthy.
    fn squeeze_fixture() -> (System, ClassIndex, PlannerInput) {
        let model = ClientServerStyle::example_system("storage", 2, 3, 6).unwrap();
        let testbed = Testbed::build().unwrap();
        let index = ClassIndex::build(&testbed);
        let mut client_groups = BTreeMap::new();
        for i in 1..=6 {
            // The example system round-robins clients over the two groups;
            // mirror that so the model and the input agree.
            let group = if i % 2 == 1 {
                "ServerGrp1"
            } else {
                "ServerGrp2"
            };
            client_groups.insert(format!("User{i}"), group.to_string());
        }
        let mut groups = BTreeMap::new();
        groups.insert(
            "ServerGrp1".to_string(),
            GroupSnapshot {
                load: 1.0,
                live_servers: 3,
                stuck_servers: 2,
            },
        );
        groups.insert(
            "ServerGrp2".to_string(),
            GroupSnapshot {
                load: 0.0,
                live_servers: 3,
                stuck_servers: 0,
            },
        );
        let mut class_bandwidth = BTreeMap::new();
        for class in index.client_classes() {
            let squeezed = class.members.contains(&"User3".to_string());
            class_bandwidth.insert(
                (class.id, "ServerGrp1".to_string()),
                Some(if squeezed { 5_000.0 } else { 5.0e6 }),
            );
            class_bandwidth.insert((class.id, "ServerGrp2".to_string()), Some(3.0e6));
        }
        let input = PlannerInput {
            now_secs: 100.0,
            thresholds: thresholds(),
            groups,
            spare_servers: 2,
            class_bandwidth,
            violating_clients: vec!["User3".to_string()],
            overloaded_groups: Vec::new(),
            client_groups,
        };
        (model, index, input)
    }

    #[test]
    fn squeezed_class_is_moved_in_one_batch_with_a_drain() {
        let (model, index, input) = squeeze_fixture();
        let mut planner = GroupPlanner::new(index, Some(60.0));
        let plan = planner.plan(&model, &input).expect("a plan is produced");
        assert!(plan.tactics.contains(&"moveClientGroup".to_string()));
        assert!(plan.tactics.contains(&"drainServer".to_string()));
        let batch = plan
            .runtime_ops
            .iter()
            .find_map(|op| match op {
                RuntimeOp::MoveClientGroup { clients, to_group } => {
                    Some((clients.clone(), to_group.clone()))
                }
                _ => None,
            })
            .expect("a batched move is planned");
        assert_eq!(batch.0, vec!["User3".to_string()]);
        assert_eq!(batch.1, "ServerGrp2");
        assert!(plan.runtime_ops.iter().any(
            |op| matches!(op, RuntimeOp::DrainStuckServers { group, .. } if group == "ServerGrp1")
        ));
        // The model ops re-attach the moved client and validate style-clean.
        let mut repaired = model.clone();
        for op in &plan.model_ops {
            archmodel::apply_op(&mut repaired, op).unwrap();
        }
        assert!(ClientServerStyle::validate(&repaired).is_empty());
        let user3 = repaired.component_by_name("User3").unwrap();
        let group = ClientServerStyle::group_of_client(&repaired, user3).unwrap();
        assert_eq!(repaired.component(group).unwrap().name, "ServerGrp2");
    }

    #[test]
    fn damping_suppresses_an_immediate_replan() {
        let (model, index, input) = squeeze_fixture();
        let mut planner = GroupPlanner::new(index, Some(60.0));
        assert!(planner.plan(&model, &input).is_some());
        let mut soon = input.clone();
        soon.now_secs = 130.0;
        assert!(planner.plan(&model, &soon).is_none(), "inside the window");
        let mut later = input;
        later.now_secs = 200.0;
        assert!(planner.plan(&model, &later).is_some(), "window elapsed");
    }

    #[test]
    fn overloaded_group_recruits_spares_scaled_to_the_backlog() {
        let (model, index, mut input) = squeeze_fixture();
        input.violating_clients.clear();
        input.overloaded_groups = vec!["ServerGrp1".to_string()];
        input.groups.get_mut("ServerGrp1").unwrap().load = 20.0;
        input.groups.get_mut("ServerGrp1").unwrap().stuck_servers = 0;
        let mut planner = GroupPlanner::new(index, None);
        let plan = planner.plan(&model, &input).expect("a plan is produced");
        assert!(plan.tactics.contains(&"rebalanceGroups".to_string()));
        let activations = plan
            .runtime_ops
            .iter()
            .filter(|op| matches!(op, RuntimeOp::ActivateServer { .. }))
            .count();
        // load 20 / max 6 → 3 needed, but only 2 spares exist.
        assert_eq!(activations, 2);
        assert!(plan.runtime_ops.iter().any(
            |op| matches!(op, RuntimeOp::DeleteGauge { gauge } if gauge == "load-gauge/ServerGrp1")
        ));
    }

    #[test]
    fn healthy_input_produces_no_plan() {
        let (model, index, mut input) = squeeze_fixture();
        input.violating_clients.clear();
        input.overloaded_groups.clear();
        let mut planner = GroupPlanner::new(index, None);
        assert!(planner.plan(&model, &input).is_none());
    }

    #[test]
    fn squeezed_class_with_no_reachable_target_stays_put() {
        let (model, index, mut input) = squeeze_fixture();
        for (_, value) in input.class_bandwidth.iter_mut() {
            *value = Some(1_000.0); // everything below the minimum
        }
        let mut planner = GroupPlanner::new(index, None);
        assert!(planner.plan(&model, &input).is_none());
    }

    #[test]
    fn plans_are_deterministic() {
        let (model, index, input) = squeeze_fixture();
        let mut a = GroupPlanner::new(index.clone(), Some(60.0));
        let mut b = GroupPlanner::new(index, Some(60.0));
        assert_eq!(a.plan(&model, &input), b.plan(&model, &input));
    }

    #[test]
    fn large_scale_squeeze_moves_whole_aggregation_classes() {
        // A synthetic large-scale-shaped input: every class behind the R2
        // aggregation switches is squeezed on ServerGrp1.
        let testbed = Testbed::from_spec(&TestbedSpec::large_scale()).unwrap();
        let index = ClassIndex::build(&testbed);
        // Model with the right component names for the moved members: use
        // a generated system with 2 groups and 2000 clients.
        let model = ClientServerStyle::example_system("web", 2, 3, 2000).unwrap();
        let mut client_groups = BTreeMap::new();
        for i in 1..=2000 {
            let group = if i % 2 == 1 {
                "ServerGrp1"
            } else {
                "ServerGrp2"
            };
            client_groups.insert(format!("User{i}"), group.to_string());
        }
        // The squeezed classes: clients 801..=1200 (behind R2).
        let squeezed: BTreeSet<usize> = (801..=1200)
            .filter_map(|i| index.client_class_of(&format!("User{i}")))
            .collect();
        let mut groups = BTreeMap::new();
        groups.insert(
            "ServerGrp1".to_string(),
            GroupSnapshot {
                load: 2.0,
                live_servers: 48,
                stuck_servers: 30,
            },
        );
        groups.insert(
            "ServerGrp2".to_string(),
            GroupSnapshot {
                load: 0.0,
                live_servers: 32,
                stuck_servers: 0,
            },
        );
        let mut class_bandwidth = BTreeMap::new();
        for class in index.client_classes() {
            let bw1 = if squeezed.contains(&class.id) {
                4_000.0
            } else {
                2.0e6
            };
            class_bandwidth.insert((class.id, "ServerGrp1".to_string()), Some(bw1));
            class_bandwidth.insert((class.id, "ServerGrp2".to_string()), Some(3.0e6));
        }
        let violating: Vec<String> = (801..=1200)
            .map(|i| format!("User{i}"))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let input = PlannerInput {
            now_secs: 50.0,
            thresholds: thresholds(),
            groups,
            spare_servers: 14,
            class_bandwidth,
            violating_clients: violating,
            overloaded_groups: Vec::new(),
            client_groups,
        };
        let mut planner = GroupPlanner::new(index.clone(), Some(60.0));
        let plan = planner.plan(&model, &input).expect("bulk plan produced");
        let moved: usize = plan
            .runtime_ops
            .iter()
            .filter_map(|op| match op {
                RuntimeOp::MoveClientGroup { clients, .. } => Some(clients.len()),
                _ => None,
            })
            .sum();
        // Half of each squeezed class is on ServerGrp1 in this fixture; every
        // one of those clients moves in a single plan.
        assert_eq!(moved, 200);
        assert!(plan.runtime_ops.iter().any(
            |op| matches!(op, RuntimeOp::DrainStuckServers { group, .. } if group == "ServerGrp1")
        ));
        // One gauge-churn batch, not one per client.
        let churns = plan
            .runtime_ops
            .iter()
            .filter(|op| matches!(op, RuntimeOp::DeleteGauge { .. }))
            .count();
        assert_eq!(churns, 1);
        // A second planner run with the same input produces the same plan.
        let mut other = GroupPlanner::new(index, Some(60.0));
        assert_eq!(other.plan(&model, &input), Some(plan));
    }
}
