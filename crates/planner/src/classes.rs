//! Network-position equivalence classes over a testbed topology.
//!
//! Two client machines attached to the same aggregation switch by links of
//! equal capacity and latency occupy *symmetric network positions*: every
//! path from a server group to one of them differs from the path to the
//! other only in the final access hop, which carries the same parameters.
//! Their Remos flow predictions therefore agree up to each machine's own
//! in-flight transfers — close enough that one max-min probe per class can
//! serve every member at fleet scale. Group replicas with identical
//! attachment are symmetric in the same sense on the server side.
//!
//! The index deliberately merges **only under an aggregation tier**
//! ([`Testbed::agg_routers`](gridapp::Testbed) non-empty). The classic
//! direct-attach presets keep one class per machine and one class per
//! server, so class-shared probing there is *exactly* the historical
//! per-element probing — byte-identical reports, as the property tests
//! assert. The aggregated presets accept the per-machine approximation in
//! exchange for cutting probe sampling by roughly the class size.

use gridapp::Testbed;
use simnet::NodeId;
use std::collections::BTreeMap;

/// A class of clients whose machines occupy symmetric network positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientClass {
    /// Dense class id (ascending, assigned in client-number order).
    pub id: usize,
    /// The node the class's machines attach to (an aggregation switch for
    /// merged classes, the machine's router otherwise).
    pub attach: NodeId,
    /// Member client names (`"User1"`, …) in lexicographic order — the order
    /// the flow snapshot iterates.
    pub members: Vec<String>,
    /// The representative whose machine is probed for the whole class (the
    /// lexicographically first member).
    pub representative: String,
}

/// A class of servers with identical attachment, interchangeable for
/// bandwidth prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerClass {
    /// Dense class id (ascending, assigned in server-number order).
    pub id: usize,
    /// Member server names (`"S1"`, …) in lexicographic order.
    pub members: Vec<String>,
}

/// Key under which clients/servers merge. Merging happens only for machines
/// behind an aggregation switch; everything else stays a singleton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum PositionKey {
    /// Symmetric position behind an aggregation switch:
    /// `(attach node, capacity bits, latency bits, shares_request_queue)`.
    Shared(usize, u64, u64, bool),
    /// A singleton position, keyed by the machine itself (clients sharing a
    /// machine were always served by one probe) or by the element index.
    Singleton(usize),
}

/// The equivalence-class index of one testbed deployment.
///
/// Built once per run from the static topology; group membership and
/// liveness stay dynamic and are consulted at probe time.
#[derive(Debug, Clone)]
pub struct ClassIndex {
    client_classes: Vec<ClientClass>,
    client_class_of: BTreeMap<String, usize>,
    server_classes: Vec<ServerClass>,
    server_class_of: BTreeMap<String, usize>,
    shared: bool,
    runtime_refinement: bool,
}

impl ClassIndex {
    /// Computes the index for a built testbed, using the grid application's
    /// naming conventions (client *i* is `"User{i}"` on machine `"C{i}"`,
    /// server *j* is `"S{j}"`).
    pub fn build(testbed: &Testbed) -> ClassIndex {
        let topology = &testbed.topology;
        let agg: std::collections::BTreeSet<NodeId> = testbed.agg_routers.iter().copied().collect();
        let shared = !agg.is_empty();

        // Clients, grouped per machine; machines merge when they hang off the
        // same aggregation switch with identical access links.
        let mut client_key_of_host: BTreeMap<NodeId, PositionKey> = BTreeMap::new();
        let mut client_members: BTreeMap<PositionKey, Vec<String>> = BTreeMap::new();
        let mut client_order: Vec<PositionKey> = Vec::new();
        for (i, (_, host)) in testbed.client_hosts.iter().enumerate() {
            let key = *client_key_of_host.entry(*host).or_insert_with(|| {
                match topology.position_signature(*host) {
                    Some((attach, cap, lat)) if shared && agg.contains(&attach) => {
                        PositionKey::Shared(attach.0, cap, lat, false)
                    }
                    _ => PositionKey::Singleton(host.0),
                }
            });
            let members = client_members.entry(key).or_insert_with(|| {
                client_order.push(key);
                Vec::new()
            });
            members.push(format!("User{}", i + 1));
        }
        let mut client_classes = Vec::with_capacity(client_order.len());
        let mut client_class_of = BTreeMap::new();
        for key in client_order {
            let mut members = client_members.remove(&key).expect("key was recorded");
            members.sort();
            let id = client_classes.len();
            for member in &members {
                client_class_of.insert(member.clone(), id);
            }
            let representative = members.first().expect("classes are non-empty").clone();
            let attach = match key {
                PositionKey::Shared(attach, ..) => NodeId(attach),
                PositionKey::Singleton(host) => topology
                    .attachment(NodeId(host))
                    .map(|(node, _)| node)
                    .unwrap_or(NodeId(host)),
            };
            client_classes.push(ClientClass {
                id,
                attach,
                members,
                representative,
            });
        }

        // Servers: identical attachment merges only under an aggregation
        // tier; the machine shared with the request queue stays apart (its
        // access link carries every inbound request, so it is *not*
        // position-symmetric with its neighbours).
        let mut server_members: BTreeMap<PositionKey, Vec<String>> = BTreeMap::new();
        let mut server_order: Vec<PositionKey> = Vec::new();
        for (j, host) in testbed.server_hosts.iter().enumerate() {
            let key = if shared {
                match topology.position_signature(*host) {
                    Some((attach, cap, lat)) => {
                        PositionKey::Shared(attach.0, cap, lat, *host == testbed.host_request_queue)
                    }
                    None => PositionKey::Singleton(host.0),
                }
            } else {
                PositionKey::Singleton(j)
            };
            let members = server_members.entry(key).or_insert_with(|| {
                server_order.push(key);
                Vec::new()
            });
            members.push(format!("S{}", j + 1));
        }
        let mut server_classes = Vec::with_capacity(server_order.len());
        let mut server_class_of = BTreeMap::new();
        for key in server_order {
            let mut members = server_members.remove(&key).expect("key was recorded");
            members.sort();
            let id = server_classes.len();
            for member in &members {
                server_class_of.insert(member.clone(), id);
            }
            server_classes.push(ServerClass { id, members });
        }

        ClassIndex {
            client_classes,
            client_class_of,
            server_classes,
            server_class_of,
            shared,
            runtime_refinement: false,
        }
    }

    /// Enables runtime-state-aware refinement of server classes during
    /// probing: position symmetry alone is a *static* property, but a
    /// replica seconds into a large reply transmission has less residual
    /// access bandwidth than its idle neighbours, so letting it answer a
    /// shared probe for the whole class understates what the group can
    /// offer. With refinement on, class-shared probing partitions each
    /// server class by [`GridApp::server_runtime_signature`](gridapp::GridApp::server_runtime_signature)
    /// (idle / computing / sending, bucketed by reply age) and probes one
    /// representative per partition. Off by default — the refinement
    /// changes which machines get probed, so it is opt-in per deployment.
    pub fn with_runtime_refinement(mut self, enabled: bool) -> ClassIndex {
        self.runtime_refinement = enabled;
        self
    }

    /// Whether probe sharing partitions server classes by runtime state.
    pub fn runtime_refinement(&self) -> bool {
        self.runtime_refinement
    }

    /// Whether any merging happened (an aggregation tier exists). When
    /// `false`, class-shared probing degenerates to exact per-element
    /// probing.
    pub fn is_shared(&self) -> bool {
        self.shared
    }

    /// The client classes, in ascending id order.
    pub fn client_classes(&self) -> &[ClientClass] {
        &self.client_classes
    }

    /// The server classes, in ascending id order.
    pub fn server_classes(&self) -> &[ServerClass] {
        &self.server_classes
    }

    /// The class a client belongs to.
    pub fn client_class_of(&self, client: &str) -> Option<usize> {
        self.client_class_of.get(client).copied()
    }

    /// The class a server belongs to.
    pub fn server_class_of(&self, server: &str) -> Option<usize> {
        self.server_class_of.get(server).copied()
    }

    /// The members of a client class.
    pub fn client_class(&self, id: usize) -> Option<&ClientClass> {
        self.client_classes.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridapp::TestbedSpec;

    #[test]
    fn classic_presets_have_one_class_per_machine_and_server() {
        for preset in ["paper", "wide-fanout", "congested-core"] {
            let spec = TestbedSpec::by_name(preset).unwrap();
            let testbed = Testbed::from_spec(&spec).unwrap();
            let index = ClassIndex::build(&testbed);
            assert!(!index.is_shared(), "{preset}");
            // One client class per distinct machine (shared machines pool
            // their clients, exactly like the historical per-machine memo).
            let distinct_hosts: std::collections::BTreeSet<_> =
                testbed.client_hosts.iter().map(|&(_, h)| h).collect();
            assert_eq!(index.client_classes().len(), distinct_hosts.len());
            // Every server is its own class.
            assert_eq!(index.server_classes().len(), testbed.server_hosts.len());
            for class in index.server_classes() {
                assert_eq!(class.members.len(), 1, "{preset}");
            }
        }
    }

    #[test]
    fn paper_preset_pools_machine_sharing_clients() {
        let testbed = Testbed::build().unwrap();
        let index = ClassIndex::build(&testbed);
        // C1/C2 and C5/C6 share machines: 4 client classes for 6 clients.
        assert_eq!(index.client_classes().len(), 4);
        let c12 = index.client_class_of("User1").unwrap();
        assert_eq!(index.client_class_of("User2"), Some(c12));
        assert_ne!(
            index.client_class_of("User3"),
            index.client_class_of("User4")
        );
        assert_eq!(
            index.client_class(c12).unwrap().representative,
            "User1".to_string()
        );
    }

    #[test]
    fn large_scale_merges_behind_aggregation_switches() {
        let testbed = Testbed::from_spec(&TestbedSpec::large_scale()).unwrap();
        let index = ClassIndex::build(&testbed);
        assert!(index.is_shared());
        // 800 R1 clients at 32/agg = 25 switches, 400 R2 clients = 13
        // switches (12 full + one of 16), 800 R5 clients = 25 switches.
        assert_eq!(index.client_classes().len(), 63);
        let total_members: usize = index.client_classes().iter().map(|c| c.members.len()).sum();
        assert_eq!(total_members, 2000);
        // Servers: the 56 machines behind R3 are one class, the request-queue
        // machine behind R4 is its own, the remaining 37 behind R4 are one.
        assert_eq!(index.server_classes().len(), 3);
        let sizes: Vec<usize> = index
            .server_classes()
            .iter()
            .map(|c| c.members.len())
            .collect();
        assert_eq!(sizes.iter().sum::<usize>(), 94);
        assert!(sizes.contains(&56), "{sizes:?}");
        assert!(sizes.contains(&1), "{sizes:?}");
        assert!(sizes.contains(&37), "{sizes:?}");
    }

    #[test]
    fn index_build_is_deterministic() {
        let testbed = Testbed::from_spec(&TestbedSpec::large_scale()).unwrap();
        let a = ClassIndex::build(&testbed);
        let b = ClassIndex::build(&testbed);
        assert_eq!(a.client_classes(), b.client_classes());
        assert_eq!(a.server_classes(), b.server_classes());
    }
}
