//! Class-shared Remos probing.
//!
//! [`GridApp::flow_snapshot`](gridapp::GridApp::flow_snapshot) runs one
//! max-min probe per client machine × server of the client's group — ~1 s of
//! wall clock per control tick at 2,000 clients. The class-shared snapshot
//! probes once per **network-position class** instead: one client-class
//! representative against one representative per server class present in the
//! group. On the classic presets every class is a singleton, so the shared
//! snapshot is bit-identical to the per-client one (the property tests
//! assert it); on aggregated testbeds it cuts probe sampling by roughly the
//! class size.

use crate::classes::{ClassIndex, ClientClass};
use gridapp::{FlowSnapshot, GridApp};
use std::collections::{BTreeSet, HashMap};

/// The class-level `remos_get_flow`: predicted bandwidth between a client
/// class and a server group, taken as the best available bandwidth from one
/// representative per server class present in the group to the client
/// class's representative machine. `None` mirrors the per-client query's
/// failure when the group has no live active server.
pub fn class_remos(
    app: &GridApp,
    index: &ClassIndex,
    class: &ClientClass,
    group: &str,
) -> Option<f64> {
    let servers = app.active_servers(group);
    if servers.is_empty() {
        return None;
    }
    let mut probed: BTreeSet<(usize, u64)> = BTreeSet::new();
    let mut best: f64 = 0.0;
    for server in servers {
        if let Some(sclass) = index.server_class_of(&server) {
            // Position symmetry is static; runtime refinement additionally
            // partitions by what the replica is doing right now, so a
            // replica mid-reply never answers a shared probe for its idle
            // class-mates (its own transfer depresses the prediction).
            let signature = if index.runtime_refinement() {
                app.server_runtime_signature(&server)
            } else {
                0
            };
            if !probed.insert((sclass, signature)) {
                continue; // an equivalent member of this class already answered
            }
        }
        let bw = app
            .available_bandwidth_between(&server, &class.representative)
            .unwrap_or(0.0);
        best = best.max(bw);
    }
    Some(best)
}

/// A representative-level flow snapshot for fleet-scale monitoring: instead
/// of one entry per client (50k gauge updates per tick), one entry per
/// `(client class, current group)` pair, keyed by the lexicographically
/// first member of that pair — the class representative while the class is
/// homogeneous, and the first mover after a partial group migration. The
/// model only carries gauges for these representatives at fleet scale, so
/// constraint checking scales with the number of classes, not clients.
pub fn class_rep_flow_snapshot(app: &GridApp, index: &ClassIndex) -> FlowSnapshot {
    let mut entries = Vec::new();
    let mut seen: BTreeSet<(usize, String)> = BTreeSet::new();
    for client in app.client_names() {
        let group = match app.client_group(&client) {
            Ok(group) => group,
            Err(_) => continue,
        };
        let Some(class) = index
            .client_class_of(&client)
            .and_then(|id| index.client_class(id))
        else {
            continue;
        };
        if !seen.insert((class.id, group.clone())) {
            continue; // this (class, group) already has a representative
        }
        let flow = class_remos(app, index, class, &group);
        entries.push((client, group, flow));
    }
    FlowSnapshot::from_entries(entries)
}

/// The class-shared equivalent of
/// [`GridApp::flow_snapshot`](gridapp::GridApp::flow_snapshot): one entry per
/// client in client-name order, with the flow of each `(class, group)` pair
/// computed once and fanned out to every member.
pub fn class_flow_snapshot(app: &GridApp, index: &ClassIndex) -> FlowSnapshot {
    // Nested memo (class → group → flow) so the common memo-hit path — the
    // vast majority of the 2,000 per-tick lookups at scale — allocates
    // nothing; the group key is cloned only on a miss.
    let mut memo: HashMap<usize, HashMap<String, Option<f64>>> = HashMap::new();
    let mut entries = Vec::new();
    for client in app.client_names() {
        let group = match app.client_group(&client) {
            Ok(group) => group,
            Err(_) => continue,
        };
        let flow = match index
            .client_class_of(&client)
            .and_then(|id| index.client_class(id))
        {
            Some(class) => {
                let per_group = memo.entry(class.id).or_default();
                match per_group.get(&group) {
                    Some(&cached) => cached,
                    None => {
                        let value = class_remos(app, index, class, &group);
                        per_group.insert(group.clone(), value);
                        value
                    }
                }
            }
            // A client outside the index (never the case for indexes built
            // from the app's own testbed) falls back to the exact query.
            None => app.remos_get_flow(&client, &group).ok(),
        };
        entries.push((client, group, flow));
    }
    FlowSnapshot::from_entries(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridapp::{GridConfig, TestbedSpec, SERVER_GROUP_1};
    use simnet::SimTime;

    #[test]
    fn classic_snapshot_is_bit_identical_to_per_client_probing() {
        let mut app = GridApp::build(GridConfig::default()).unwrap();
        app.advance(SimTime::from_secs(20.0));
        let index = ClassIndex::build(app.testbed());
        assert_eq!(class_flow_snapshot(&app, &index), app.flow_snapshot());
        // Also under a squeeze and with a crashed replica.
        app.set_competition_sg1(SimTime::from_secs(21.0), 9.99e6)
            .unwrap();
        app.crash_server(SimTime::from_secs(22.0), "S1").unwrap();
        app.advance(SimTime::from_secs(30.0));
        assert_eq!(class_flow_snapshot(&app, &index), app.flow_snapshot());
    }

    #[test]
    fn dead_group_mirrors_the_per_client_failure() {
        let mut app = GridApp::build(GridConfig::default()).unwrap();
        for server in ["S1", "S2", "S3"] {
            app.crash_server(SimTime::from_secs(5.0), server).unwrap();
        }
        let index = ClassIndex::build(app.testbed());
        let snapshot = class_flow_snapshot(&app, &index);
        for (client, group, flow) in snapshot.entries() {
            if group == SERVER_GROUP_1 {
                assert!(flow.is_none(), "{client} still sees a flow");
            }
        }
        assert_eq!(snapshot, app.flow_snapshot());
    }

    #[test]
    fn runtime_refinement_stops_a_mid_reply_replica_from_contaminating_its_probe() {
        let mut app = GridApp::build(GridConfig::with_testbed(TestbedSpec::large_scale())).unwrap();
        // Stretch reply transmissions (200 KB at access speed ≈ 0.16 s, an
        // order of magnitude past the default 20 KB) so replicas spend much
        // of their duty cycle mid-send, then step the deterministic
        // simulation until the name-order-first SG1 replica — the one the
        // first-idle dispatcher keeps hottest and the one that answers the
        // unrefined shared probe for its whole class — is mid-reply while
        // an idle class-mate still has spare access bandwidth. The scan
        // starts after the opening burst of 2,000 first requests drains.
        app.set_workload(0.002, 2.0e5);
        let index = ClassIndex::build(app.testbed());
        let refined = ClassIndex::build(app.testbed()).with_runtime_refinement(true);
        let class = index
            .client_class(index.client_class_of("User1").unwrap())
            .unwrap();
        let mut t = 25.0;
        let (exact, unrefined) = loop {
            app.advance(SimTime::from_secs(t));
            let servers = app.active_servers(SERVER_GROUP_1);
            let first_mid_reply = app.server_runtime_signature(&servers[0]) >= 2;
            let any_idle = servers.iter().any(|s| app.server_runtime_signature(s) == 0);
            if first_mid_reply && any_idle {
                // The exact per-client answer probes every replica.
                let exact = servers
                    .iter()
                    .map(|s| {
                        app.available_bandwidth_between(s, &class.representative)
                            .unwrap_or(0.0)
                    })
                    .fold(0.0f64, f64::max);
                let unrefined = class_remos(&app, &index, class, SERVER_GROUP_1).unwrap();
                if unrefined < exact {
                    break (exact, unrefined);
                }
            }
            t += 0.05;
            assert!(t < 120.0, "never caught the first replica mid-reply");
        };
        // The contaminated shared probe understates the group; partitioning
        // the server class by runtime state restores the exact answer (an
        // idle representative reports the idle capacity).
        let refined_bw = class_remos(&app, &refined, class, SERVER_GROUP_1).unwrap();
        assert!(
            unrefined < exact,
            "mid-reply representative should depress the shared probe"
        );
        assert_eq!(refined_bw, exact, "refined probe must match the exact max");
    }

    #[test]
    fn rep_snapshot_has_one_entry_per_class_and_group() {
        let mut app = GridApp::build(GridConfig::with_testbed(TestbedSpec::large_scale())).unwrap();
        app.advance(SimTime::from_secs(10.0));
        let index = ClassIndex::build(app.testbed());
        let rep = class_rep_flow_snapshot(&app, &index);
        // Everyone starts on SG1: one entry per client class, keyed by its
        // representative, carrying the class-shared flow.
        assert_eq!(rep.entries().len(), index.client_classes().len());
        let full = class_flow_snapshot(&app, &index);
        for (client, group, flow) in rep.entries() {
            let class = index
                .client_class(index.client_class_of(client).unwrap())
                .unwrap();
            assert_eq!(*client, class.representative);
            let exact = full
                .entries()
                .iter()
                .find(|(c, _, _)| c == client)
                .map(|&(_, _, f)| f)
                .unwrap();
            assert_eq!((group.as_str(), *flow), (SERVER_GROUP_1, exact));
        }
    }

    #[test]
    fn large_scale_snapshot_cuts_probe_solves_by_the_class_size() {
        let mut app = GridApp::build(GridConfig::with_testbed(TestbedSpec::large_scale())).unwrap();
        app.advance(SimTime::from_secs(10.0));
        let index = ClassIndex::build(app.testbed());

        let before = app.probe_solve_count();
        let shared = class_flow_snapshot(&app, &index);
        let shared_solves = app.probe_solve_count() - before;

        // Perturb the network so the epoch memo cannot serve the second
        // snapshot from the first one's probes.
        app.set_competition_sg2(SimTime::from_secs(10.5), 1.0e6)
            .unwrap();
        let before = app.probe_solve_count();
        let full = app.flow_snapshot();
        let full_solves = app.probe_solve_count() - before;

        assert_eq!(shared.entries().len(), full.entries().len());
        assert!(
            full_solves >= 4 * shared_solves.max(1),
            "expected ≥4× fewer probe solves, got {full_solves} vs {shared_solves}"
        );
    }
}
