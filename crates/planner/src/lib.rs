//! # planner — group-level adaptation for fleet-scale testbeds
//!
//! The paper's repair strategies act one element at a time (`moveClient`,
//! `findServer`), which is faithful at testbed scale but collapses on the
//! 2,000-client deployment: per-client repairs cannot migrate 400 squeezed
//! clients within a 300 s run, and one max-min probe per client-machine ×
//! group pair costs ~1 s of wall clock per control tick. Related work argues
//! grid adaptation should operate on architectural *groupings* rather than
//! individuals — model transformations over component groups (Manset et al.)
//! and graph-grammar rules reshaping whole communication groups at once
//! (Bouassida Rodriguez et al.). This crate is that step:
//!
//! * [`classes`] — a **network-position equivalence-class index** computed
//!   from the [`Testbed`](gridapp::Testbed) topology: client machines behind
//!   the same aggregation switch (and group replicas with identical
//!   attachment) occupy symmetric network positions, so one max-min probe per
//!   class serves every member;
//! * [`probes`] — the class-shared Remos snapshot: bit-identical to
//!   per-client probing on the classic presets (where every class is a
//!   singleton) and ~group-size cheaper on the aggregated ones;
//! * [`plan`] — the **bulk reassignment planner**: consumes class-level probe
//!   snapshots and current model properties and emits a batched repair plan
//!   of group tactics — `moveClientGroup` (re-home every squeezed client of
//!   an aggregation class in one pass), `rebalanceGroups` (water-filling
//!   assignment of client classes to server groups), and `drainServer`
//!   (recycle replicas wedged on a collapsed path).
//!
//! The adaptation framework exposes the planner as the `plannedRepair`
//! strategy preset; see `arch_adapt::framework`.

#![warn(missing_docs)]

pub mod classes;
pub mod plan;
pub mod probes;

pub use classes::{ClassIndex, ClientClass, ServerClass};
pub use plan::{GroupPlan, GroupPlanner, GroupSnapshot, PlannerInput, PlannerThresholds};
pub use probes::{class_flow_snapshot, class_remos, class_rep_flow_snapshot};
