//! Property test: class-shared probing is **bit-identical** to per-client
//! probing on the classic presets.
//!
//! On the direct-attach testbeds every network-position class is a singleton
//! (one class per client machine, one per server), so
//! [`class_flow_snapshot`](planner::class_flow_snapshot) must reproduce
//! [`GridApp::flow_snapshot`](gridapp::GridApp::flow_snapshot) exactly —
//! same entries, same order, same bits — under arbitrary seeds, sampling
//! times, squeezes, and crashes. This is the contract that lets the
//! `plannedRepair` strategy keep classic-preset sweep reports byte-identical
//! while sharing probes at scale.

use gridapp::{GridApp, GridConfig, TestbedSpec};
use planner::{class_flow_snapshot, ClassIndex};
use proptest::prelude::*;
use simnet::SimTime;

const CLASSIC_PRESETS: [&str; 3] = ["paper", "wide-fanout", "congested-core"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn classic_class_probing_is_bit_identical_to_per_client_probing(
        preset in 0usize..CLASSIC_PRESETS.len(),
        seed in 0u64..10_000,
        advance_secs in 1.0f64..120.0,
        squeeze_draw in 0u8..2,
        crash_draw in 0u8..2,
    ) {
        let (squeeze, crash_first_server) = (squeeze_draw == 1, crash_draw == 1);
        let spec = TestbedSpec::by_name(CLASSIC_PRESETS[preset]).unwrap();
        let config = GridConfig { seed, ..GridConfig::with_testbed(spec) };
        let mut app = GridApp::build(config).unwrap();
        let index = ClassIndex::build(app.testbed());
        prop_assert!(!index.is_shared(), "classic presets never merge");
        if squeeze {
            app.set_competition_sg1(SimTime::from_secs(0.5), 9.99e6).unwrap();
        }
        if crash_first_server {
            app.crash_server(SimTime::from_secs(0.7), "S1").unwrap();
        }
        app.advance(SimTime::from_secs(advance_secs));
        let shared = class_flow_snapshot(&app, &index);
        let full = app.flow_snapshot();
        prop_assert_eq!(&shared, &full);
        // Bit-exact, not just approximately equal.
        for ((_, _, a), (_, _, b)) in shared.entries().iter().zip(full.entries()) {
            prop_assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
        }
    }
}

/// A fixed large-scale case: the documented class counts, and determinism of
/// the shared snapshot across repeated builds of the index.
#[test]
fn large_scale_class_counts_and_snapshot_determinism() {
    let config = GridConfig::with_testbed(TestbedSpec::large_scale());
    let mut app = GridApp::build(config).unwrap();
    app.advance(SimTime::from_secs(5.0));
    let index = ClassIndex::build(app.testbed());
    assert!(index.is_shared());
    assert_eq!(index.client_classes().len(), 63);
    assert_eq!(index.server_classes().len(), 3);
    let a = class_flow_snapshot(&app, &index);
    let b = class_flow_snapshot(&app, &ClassIndex::build(app.testbed()));
    assert_eq!(a, b);
    assert_eq!(a.entries().len(), 2000);
}
