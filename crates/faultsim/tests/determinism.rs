//! Property tests: a `(fault profile, seed)` pair replays bit-identically.
//!
//! Two simulations built from the same seed, driven through the same
//! compiled fault timeline, must produce bit-identical completion traces and
//! queue series — the determinism contract the sweep matrix and the CI
//! byte-compare gate rely on.

use faultsim::{apply_action, fault_profile_by_name, fault_profile_names};
use gridapp::{GridApp, GridConfig, SERVER_GROUP_1, SERVER_GROUP_2};
use proptest::prelude::*;
use simnet::SimTime;

/// Runs the application for `duration` seconds with the compiled profile
/// applied at its nominal times, sampling metrics every 5 s, and returns a
/// bit-exact fingerprint of everything observable.
fn run_fingerprint(profile: &str, seed: u64, duration: f64) -> Vec<(String, u64)> {
    let config = GridConfig {
        seed,
        ..GridConfig::default()
    };
    let mut app = GridApp::build(config).unwrap();
    let schedule = fault_profile_by_name(profile, duration).unwrap();
    let compiled = schedule.compile(app.testbed(), seed).unwrap();
    let mut next_action = 0usize;
    let mut t = 0.0;
    let mut fingerprint: Vec<(String, u64)> = Vec::new();
    while t < duration {
        t = (t + 5.0).min(duration);
        while next_action < compiled.actions.len() && compiled.actions[next_action].at_secs <= t {
            let timed = &compiled.actions[next_action];
            apply_action(&mut app, SimTime::from_secs(timed.at_secs), &timed.action).unwrap();
            next_action += 1;
        }
        app.sample_metrics(SimTime::from_secs(t));
        for completion in app.take_completions() {
            fingerprint.push((completion.client, completion.latency_secs.to_bits()));
        }
        for group in [SERVER_GROUP_1, SERVER_GROUP_2] {
            fingerprint.push((
                format!("queue/{group}"),
                app.queue_length(group).unwrap() as u64,
            ));
        }
    }
    fingerprint
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn fault_runs_replay_bit_identically(
        seed in 0u64..10_000,
        profile in 0usize..fault_profile_names().len(),
    ) {
        let name = fault_profile_names()[profile];
        let a = run_fingerprint(name, seed, 150.0);
        let b = run_fingerprint(name, seed, 150.0);
        prop_assert_eq!(a, b, "profile {} diverged under seed {}", name, seed);
    }
}

/// The compiled timeline itself is a pure function of (schedule, seed).
#[test]
fn compiled_timelines_are_pure_functions_of_schedule_and_seed() {
    let app = GridApp::build(GridConfig::default()).unwrap();
    for &name in fault_profile_names() {
        let schedule = fault_profile_by_name(name, 900.0).unwrap();
        let a = schedule.compile(app.testbed(), 1234).unwrap();
        let b = schedule.compile(app.testbed(), 1234).unwrap();
        assert_eq!(a, b, "{name} compiled differently across calls");
    }
}

/// Injected faults actually change behaviour (the subsystem is not a no-op):
/// the single-link-cut profile must alter the completion trace.
#[test]
fn faults_change_the_observable_trace() {
    let clean = run_fingerprint("none", 42, 150.0);
    let cut = run_fingerprint("single-link-cut", 42, 150.0);
    assert_ne!(clean, cut, "a cut link must perturb the run");
}
