//! Resilience metrics: availability, downtime, MTTR, and the violation
//! fraction while a fault is in force.
//!
//! The run is divided into fixed-width buckets. A bucket counts as
//! *available* when at least one request completed in it **and** the
//! bucket's mean latency met the bound — so both a wedged system (nothing
//! completes) and a drowning one (everything completes late) register as
//! downtime, which the plain violation fraction cannot see (it only counts
//! completed requests).

use serde::{Deserialize, Serialize};
use simnet::TimeSeries;

/// Default bucket width (seconds) for availability accounting — two of the
/// framework's 5 s control periods.
pub const DEFAULT_BUCKET_SECS: f64 = 10.0;

/// Consecutive available buckets required to declare recovery (guards the
/// MTTR against a single lucky bucket during flapping).
const RECOVERY_RUN: usize = 2;

/// Resilience metrics of one run under an injected fault schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Resilience {
    /// Fraction of the fault-exposed window (first onset to end of run)
    /// during which the service was available.
    pub availability: f64,
    /// Seconds of the fault-exposed window spent unavailable.
    pub downtime_secs: f64,
    /// Mean time to repair: from each fault onset to the start of the next
    /// sustained available period. `None` when the run never recovered (or
    /// no onset occurred).
    pub mttr_secs: Option<f64>,
    /// Fraction of requests completed during the fault-exposed window whose
    /// latency exceeded the bound.
    pub violation_fraction_during_fault: f64,
}

impl Resilience {
    /// Computes the metrics from a run's pooled latency series.
    ///
    /// * `latency` — one point per completed request (time, latency seconds);
    /// * `duration_secs` — the run length;
    /// * `latency_bound_secs` — the task-layer bound (paper: 2 s);
    /// * `bucket_secs` — availability bucket width;
    /// * `onsets` — fault onset times from the compiled schedule (sorted).
    pub fn of(
        latency: &TimeSeries,
        duration_secs: f64,
        latency_bound_secs: f64,
        bucket_secs: f64,
        onsets: &[f64],
    ) -> Resilience {
        let bucket_secs = bucket_secs.max(1e-9);
        let window_start = onsets.first().copied().unwrap_or(0.0);
        let available =
            bucket_availability(latency, duration_secs, latency_bound_secs, bucket_secs);

        // Downtime and availability over the fault-exposed window.
        let mut downtime = 0.0;
        let mut exposed = 0.0;
        for (i, &ok) in available.iter().enumerate() {
            let start = i as f64 * bucket_secs;
            let end = ((i + 1) as f64 * bucket_secs).min(duration_secs);
            let overlap = (end - start.max(window_start)).max(0.0);
            if overlap <= 0.0 {
                continue;
            }
            exposed += overlap;
            if !ok {
                downtime += overlap;
            }
        }
        let availability = if exposed > 0.0 {
            1.0 - downtime / exposed
        } else {
            1.0
        };

        // MTTR: for each onset, the delay until the next sustained run of
        // available buckets begins.
        let mut repair_times = Vec::new();
        let mut recovered_all = !onsets.is_empty();
        for &onset in onsets {
            match recovery_time(&available, bucket_secs, duration_secs, onset) {
                Some(t) => repair_times.push(t),
                None => recovered_all = false,
            }
        }
        let mttr_secs = if recovered_all && !repair_times.is_empty() {
            Some(repair_times.iter().sum::<f64>() / repair_times.len() as f64)
        } else {
            None
        };

        let violation_fraction_during_fault = latency
            .window(window_start, duration_secs + 1e-9)
            .fraction_above(latency_bound_secs);

        Resilience {
            availability,
            downtime_secs: downtime,
            mttr_secs,
            violation_fraction_during_fault,
        }
    }
}

/// Per-bucket availability over `[0, duration)`.
fn bucket_availability(
    latency: &TimeSeries,
    duration_secs: f64,
    bound_secs: f64,
    bucket_secs: f64,
) -> Vec<bool> {
    let buckets = (duration_secs / bucket_secs).ceil().max(1.0) as usize;
    (0..buckets)
        .map(|i| {
            let start = i as f64 * bucket_secs;
            let end = ((i + 1) as f64 * bucket_secs).min(duration_secs + 1e-9);
            let slice = latency.window(start, end);
            match slice.mean() {
                Some(mean) => mean <= bound_secs,
                None => false,
            }
        })
        .collect()
}

/// Seconds from `onset` to the start of the first run of [`RECOVERY_RUN`]
/// consecutive available buckets at or after it; `None` if the run ends
/// first. An onset inside an already-available stretch recovers immediately
/// (time 0), which is what a fault the service absorbed deserves.
fn recovery_time(
    available: &[bool],
    bucket_secs: f64,
    duration_secs: f64,
    onset: f64,
) -> Option<f64> {
    let first = ((onset / bucket_secs).floor() as usize).min(available.len());
    let mut run = 0usize;
    for (i, &ok) in available.iter().enumerate().skip(first) {
        if ok {
            run += 1;
            if run >= RECOVERY_RUN {
                let start_bucket = i + 1 - RECOVERY_RUN;
                let start = (start_bucket as f64 * bucket_secs).min(duration_secs);
                return Some((start - onset).max(0.0));
            }
        } else {
            run = 0;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A latency series that is healthy except in `[gap_start, gap_end)`
    /// (no completions at all) and late in `[late_start, late_end)`.
    fn series(duration: f64, gap: (f64, f64), late: (f64, f64)) -> TimeSeries {
        let mut s = TimeSeries::new();
        let mut t = 0.5;
        while t < duration {
            if !(gap.0..gap.1).contains(&t) {
                let value = if (late.0..late.1).contains(&t) {
                    5.0
                } else {
                    0.4
                };
                s.record(t, value);
            }
            t += 1.0;
        }
        s
    }

    #[test]
    fn healthy_run_is_fully_available() {
        let s = series(100.0, (0.0, 0.0), (0.0, 0.0));
        let r = Resilience::of(&s, 100.0, 2.0, 10.0, &[]);
        assert_eq!(r.availability, 1.0);
        assert_eq!(r.downtime_secs, 0.0);
        assert!(r.mttr_secs.is_none(), "no onset, no repair");
        assert_eq!(r.violation_fraction_during_fault, 0.0);
    }

    #[test]
    fn wedged_window_counts_as_downtime_and_yields_an_mttr() {
        // Fault at t=40; nothing completes in [40, 70); healthy after.
        let s = series(100.0, (40.0, 70.0), (0.0, 0.0));
        let r = Resilience::of(&s, 100.0, 2.0, 10.0, &[40.0]);
        // Exposed window is [40, 100): 30 s down out of 60 s.
        assert!((r.downtime_secs - 30.0).abs() < 1e-9, "{r:?}");
        assert!((r.availability - 0.5).abs() < 1e-9, "{r:?}");
        // Recovery: buckets [70,80) and [80,90) are the sustained run.
        assert!((r.mttr_secs.unwrap() - 30.0).abs() < 1e-9, "{r:?}");
        assert_eq!(r.violation_fraction_during_fault, 0.0);
    }

    #[test]
    fn late_completions_count_as_downtime_and_violations() {
        let s = series(100.0, (0.0, 0.0), (50.0, 80.0));
        let r = Resilience::of(&s, 100.0, 2.0, 10.0, &[50.0]);
        assert!((r.downtime_secs - 30.0).abs() < 1e-9, "{r:?}");
        assert!(r.violation_fraction_during_fault > 0.5, "{r:?}");
        assert!((r.mttr_secs.unwrap() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn never_recovering_yields_no_mttr() {
        let s = series(100.0, (40.0, 100.0), (0.0, 0.0));
        let r = Resilience::of(&s, 100.0, 2.0, 10.0, &[40.0]);
        assert!(r.mttr_secs.is_none());
        assert!((r.availability - 0.0).abs() < 1e-9);
        assert!((r.downtime_secs - 60.0).abs() < 1e-9);
    }

    #[test]
    fn absorbed_fault_recovers_immediately() {
        // The service never blinks: MTTR is zero.
        let s = series(100.0, (0.0, 0.0), (0.0, 0.0));
        let r = Resilience::of(&s, 100.0, 2.0, 10.0, &[40.0]);
        assert_eq!(r.mttr_secs, Some(0.0));
        assert_eq!(r.availability, 1.0);
    }

    #[test]
    fn multiple_onsets_average_their_repair_times() {
        // Outages [20,40) and [60,70): repairs take 20 s and 10 s.
        let mut s = TimeSeries::new();
        let mut t = 0.5;
        while t < 100.0 {
            if !(20.0..40.0).contains(&t) && !(60.0..70.0).contains(&t) {
                s.record(t, 0.4);
            }
            t += 1.0;
        }
        let r = Resilience::of(&s, 100.0, 2.0, 10.0, &[20.0, 60.0]);
        assert!((r.mttr_secs.unwrap() - 15.0).abs() < 1e-9, "{r:?}");
        assert!((r.downtime_secs - 30.0).abs() < 1e-9);
    }
}
