//! Executing compiled fault actions against a running application.

use crate::schedule::FaultAction;
use gridapp::{AppError, GridApp};
use simnet::SimTime;

/// Applies one primitive fault mutation to the application at time `now`,
/// routing through the `simnet` fault hooks (link capacity, node liveness)
/// or the application's crash/restart operations.
pub fn apply_action(app: &mut GridApp, now: SimTime, action: &FaultAction) -> Result<(), AppError> {
    match action {
        FaultAction::SetLinkCapacity { link, capacity_bps } => {
            app.set_link_capacity(now, *link, *capacity_bps)
        }
        FaultAction::SetLinkOneWay {
            link,
            from,
            capacity_bps,
        } => app.set_link_oneway(now, *link, *from, *capacity_bps),
        FaultAction::SetNodeDown { node, down } => app.set_node_down(now, *node, *down),
        FaultAction::CrashServer { server } => app.crash_server(now, server),
        FaultAction::RestartServer { server } => app.restart_server(now, server),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FaultEvent, FaultSchedule, LinkRef};
    use gridapp::{GridConfig, SERVER_GROUP_1};

    fn secs(v: f64) -> SimTime {
        SimTime::from_secs(v)
    }

    #[test]
    fn compiled_schedule_applies_end_to_end() {
        let mut app = GridApp::build(GridConfig::default()).unwrap();
        let schedule = FaultSchedule {
            events: vec![
                FaultEvent::ServerCrash {
                    server: "S2".into(),
                    at_secs: 10.0,
                },
                FaultEvent::LinkCut {
                    link: LinkRef::between("R2", "R3"),
                    at_secs: 20.0,
                },
                FaultEvent::NodeDown {
                    node: "R4".into(),
                    at_secs: 30.0,
                },
                FaultEvent::NodeUp {
                    node: "R4".into(),
                    at_secs: 40.0,
                },
                FaultEvent::ServerRestart {
                    server: "S2".into(),
                    at_secs: 50.0,
                },
                FaultEvent::LinkRestore {
                    link: LinkRef::between("R2", "R3"),
                    at_secs: 60.0,
                },
            ],
        };
        let compiled = schedule.compile(app.testbed(), 42).unwrap();
        for timed in &compiled.actions {
            apply_action(&mut app, secs(timed.at_secs), &timed.action).unwrap();
        }
        // Everything was lifted again by the end.
        assert!(app.server_is_up("S2").unwrap());
        assert_eq!(app.group_liveness(SERVER_GROUP_1), (3, 0));
        assert!(app.remos_get_flow("User3", SERVER_GROUP_1).unwrap() > 1.0e5);
        // All six mutations hit the network audit trail except the two
        // server-process events (which are application-level).
        assert_eq!(app.network_mutation_trace().entries().len(), 4);
    }
}
