//! Executing compiled fault actions against a running application.

use crate::schedule::{FaultAction, TimedAction};
use gridapp::{AppError, GridApp};
use simnet::SimTime;
use tracestore::{EventKind, TraceEvent};

/// Applies one primitive fault mutation to the application at time `now`,
/// routing through the `simnet` fault hooks (link capacity, node liveness)
/// or the application's crash/restart operations.
pub fn apply_action(app: &mut GridApp, now: SimTime, action: &FaultAction) -> Result<(), AppError> {
    match action {
        FaultAction::SetLinkCapacity { link, capacity_bps } => {
            app.set_link_capacity(now, *link, *capacity_bps)
        }
        FaultAction::SetLinkOneWay {
            link,
            from,
            capacity_bps,
        } => app.set_link_oneway(now, *link, *from, *capacity_bps),
        FaultAction::SetNodeDown { node, down } => app.set_node_down(now, *node, *down),
        FaultAction::CrashServer { server } => app.crash_server(now, server),
        FaultAction::RestartServer { server } => app.restart_server(now, server),
    }
}

/// Applies one compiled [`TimedAction`] and, when the application carries an
/// enabled trace sink, records it: damage onsets become
/// [`EventKind::Fault`] events (the anchors MTTR and near-fault queries key
/// on), lifting actions become [`EventKind::Info`]. The subject is the
/// affected element (`"R2-R3"`, `"R4"`, `"S2"`), the detail is the
/// schedule's human-readable label.
pub fn apply_timed(app: &mut GridApp, timed: &TimedAction) -> Result<(), AppError> {
    let now = SimTime::from_secs(timed.at_secs);
    apply_action(app, now, &timed.action)?;
    if app.trace_sink().enabled() {
        let kind = if timed.is_onset {
            EventKind::Fault
        } else {
            EventKind::Info
        };
        let subject = action_subject(app, &timed.action);
        app.trace_sink().append(TraceEvent::new(
            timed.at_secs,
            kind,
            subject,
            timed.label.clone(),
        ));
    }
    Ok(())
}

/// The affected element's name: link endpoints joined with `-`, the node
/// name, or the server name.
fn action_subject(app: &GridApp, action: &FaultAction) -> String {
    let topology = &app.testbed().topology;
    let node_name = |id| {
        topology
            .node(id)
            .map(|n| n.name.clone())
            .unwrap_or_else(|_| format!("{id:?}"))
    };
    match action {
        FaultAction::SetLinkCapacity { link, .. } | FaultAction::SetLinkOneWay { link, .. } => {
            match topology.link(*link) {
                Ok(l) => format!("{}-{}", node_name(l.a), node_name(l.b)),
                Err(_) => format!("{link:?}"),
            }
        }
        FaultAction::SetNodeDown { node, .. } => node_name(*node),
        FaultAction::CrashServer { server } | FaultAction::RestartServer { server } => {
            server.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FaultEvent, FaultSchedule, LinkRef};
    use gridapp::{GridConfig, SERVER_GROUP_1};

    fn secs(v: f64) -> SimTime {
        SimTime::from_secs(v)
    }

    #[test]
    fn compiled_schedule_applies_end_to_end() {
        let mut app = GridApp::build(GridConfig::default()).unwrap();
        let schedule = FaultSchedule {
            events: vec![
                FaultEvent::ServerCrash {
                    server: "S2".into(),
                    at_secs: 10.0,
                },
                FaultEvent::LinkCut {
                    link: LinkRef::between("R2", "R3"),
                    at_secs: 20.0,
                },
                FaultEvent::NodeDown {
                    node: "R4".into(),
                    at_secs: 30.0,
                },
                FaultEvent::NodeUp {
                    node: "R4".into(),
                    at_secs: 40.0,
                },
                FaultEvent::ServerRestart {
                    server: "S2".into(),
                    at_secs: 50.0,
                },
                FaultEvent::LinkRestore {
                    link: LinkRef::between("R2", "R3"),
                    at_secs: 60.0,
                },
            ],
        };
        let compiled = schedule.compile(app.testbed(), 42).unwrap();
        for timed in &compiled.actions {
            apply_action(&mut app, secs(timed.at_secs), &timed.action).unwrap();
        }
        // Everything was lifted again by the end.
        assert!(app.server_is_up("S2").unwrap());
        assert_eq!(app.group_liveness(SERVER_GROUP_1), (3, 0));
        assert!(app.remos_get_flow("User3", SERVER_GROUP_1).unwrap() > 1.0e5);
        // All six mutations hit the network audit trail except the two
        // server-process events (which are application-level).
        assert_eq!(app.network_mutation_trace().entries().len(), 4);
    }
}
