//! Named fault-profile presets for the sweep matrix.
//!
//! Each preset scales its event times to the run duration, the same way the
//! Figure 7 workload scales its phase boundaries, so a profile means the
//! same thing on a 120 s smoke run and a 1800 s paper run.

use crate::schedule::{FaultEvent, FaultSchedule, LinkRef};
use simnet::Registry;

/// The name of the empty profile (no faults injected).
pub const NO_FAULTS: &str = "none";

/// The built-in fault profiles, in sweep-matrix order. Each entry builds a
/// schedule scaled to the given run duration; [`fault_profile_names`]
/// derives the name list from this table.
pub static FAULT_PROFILE_REGISTRY: Registry<fn(f64) -> FaultSchedule> = Registry::new(
    "fault profile",
    &[
        (NO_FAULTS, no_faults),
        ("single-link-cut", single_link_cut),
        ("server-crash-midrun", server_crash_midrun),
        ("flapping-core", flapping_core),
        ("cascade", cascade),
        ("correlated-degrade", correlated_degrade),
    ],
);

/// Names of the built-in fault profiles, in sweep-matrix order — derived
/// from [`FAULT_PROFILE_REGISTRY`], never maintained by hand.
pub fn fault_profile_names() -> &'static [&'static str] {
    FAULT_PROFILE_REGISTRY.names()
}

/// Resolves a fault profile by its sweep-matrix name, scaled to a run of
/// `duration_secs` — a thin wrapper over [`FAULT_PROFILE_REGISTRY`].
/// Returns `None` for unknown names.
pub fn fault_profile_by_name(name: &str, duration_secs: f64) -> Option<FaultSchedule> {
    FAULT_PROFILE_REGISTRY
        .find(name)
        .map(|build| build(duration_secs))
}

// No faults: the control case every existing scenario reduces to.
fn no_faults(_duration_secs: f64) -> FaultSchedule {
    FaultSchedule::none()
}

// The R2-R3 link (squeezable clients to Server Group 1) is cut outright for
// 40% of the run — unlike the workload's bandwidth squeeze, nothing gets
// through at all.
fn single_link_cut(d: f64) -> FaultSchedule {
    FaultSchedule {
        events: vec![
            FaultEvent::LinkCut {
                link: LinkRef::between("R2", "R3"),
                at_secs: 0.3 * d,
            },
            FaultEvent::LinkRestore {
                link: LinkRef::between("R2", "R3"),
                at_secs: 0.7 * d,
            },
        ],
    }
}

// Two of Server Group 1's three replicas crash mid-run, taking the group
// below its provisioned capacity; they come back (as spares, if a failover
// repair replaced them) late in the run.
fn server_crash_midrun(d: f64) -> FaultSchedule {
    FaultSchedule {
        events: vec![
            FaultEvent::ServerCrash {
                server: "S2".into(),
                at_secs: 0.35 * d,
            },
            FaultEvent::ServerCrash {
                server: "S3".into(),
                at_secs: 0.35 * d,
            },
            FaultEvent::ServerRestart {
                server: "S2".into(),
                at_secs: 0.85 * d,
            },
            FaultEvent::ServerRestart {
                server: "S3".into(),
                at_secs: 0.85 * d,
            },
        ],
    }
}

// The R2-R3 core link flaps: down half of every cycle for the middle 40% of
// the run — the oscillation case repair damping exists for.
fn flapping_core(d: f64) -> FaultSchedule {
    FaultSchedule {
        events: vec![FaultEvent::Flap {
            link: LinkRef::between("R2", "R3"),
            from_secs: 0.25 * d,
            until_secs: 0.65 * d,
            period_secs: 0.1 * d,
            duty: 0.5,
        }],
    }
}

// A correlated outage around Server Group 1's router: R3 goes down (cutting
// four core/access links at once) and one of the group's replicas crashes,
// staggered by seeded jitter; everything is lifted in the final quarter of
// the run.
fn cascade(d: f64) -> FaultSchedule {
    FaultSchedule {
        events: vec![
            FaultEvent::Correlated {
                at_secs: 0.3 * d,
                jitter_secs: 0.04 * d,
                events: vec![
                    FaultEvent::NodeDown {
                        node: "R3".into(),
                        at_secs: 0.0,
                    },
                    FaultEvent::ServerCrash {
                        server: "S1".into(),
                        at_secs: 0.0,
                    },
                ],
                factors: None,
            },
            FaultEvent::NodeUp {
                node: "R3".into(),
                at_secs: 0.7 * d,
            },
            FaultEvent::ServerRestart {
                server: "S1".into(),
                at_secs: 0.75 * d,
            },
        ],
    }
}

// A correlated grey failure with uneven blast radius: one shared cause (say,
// an overheating aggregation chassis) degrades three core links at once, but
// not equally — the per-child factors leave the R1–R3 path at half the base
// severity, the R2–R3 path at a fifth, and the R3–R4 path barely scratched.
// Everything lifts in the final quarter of the run.
fn correlated_degrade(d: f64) -> FaultSchedule {
    FaultSchedule {
        events: vec![
            FaultEvent::Correlated {
                at_secs: 0.3 * d,
                jitter_secs: 0.03 * d,
                events: vec![
                    FaultEvent::LinkDegrade {
                        link: LinkRef::between("R1", "R3"),
                        at_secs: 0.0,
                        factor: 0.8,
                    },
                    FaultEvent::LinkDegrade {
                        link: LinkRef::between("R2", "R3"),
                        at_secs: 0.0,
                        factor: 0.8,
                    },
                    FaultEvent::LinkDegrade {
                        link: LinkRef::between("R3", "R4"),
                        at_secs: 0.0,
                        factor: 0.8,
                    },
                ],
                factors: Some(vec![0.625, 0.25, 1.0]),
            },
            FaultEvent::LinkRestore {
                link: LinkRef::between("R1", "R3"),
                at_secs: 0.75 * d,
            },
            FaultEvent::LinkRestore {
                link: LinkRef::between("R2", "R3"),
                at_secs: 0.75 * d,
            },
            FaultEvent::LinkRestore {
                link: LinkRef::between("R3", "R4"),
                at_secs: 0.75 * d,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridapp::Testbed;

    #[test]
    fn every_profile_resolves_and_compiles_on_the_paper_testbed() {
        let tb = Testbed::build().unwrap();
        assert_eq!(
            fault_profile_names(),
            &[
                "none",
                "single-link-cut",
                "server-crash-midrun",
                "flapping-core",
                "cascade",
                "correlated-degrade"
            ]
        );
        for &name in fault_profile_names() {
            let schedule = fault_profile_by_name(name, 600.0)
                .unwrap_or_else(|| panic!("profile {name} resolves"));
            let compiled = schedule
                .compile(&tb, 42)
                .unwrap_or_else(|e| panic!("profile {name} compiles: {e}"));
            if name == NO_FAULTS {
                assert!(compiled.is_empty());
            } else {
                assert!(!compiled.is_empty(), "{name} injects something");
                assert!(compiled.first_onset_secs().is_some());
                // Actions stay within the run.
                for action in &compiled.actions {
                    assert!((0.0..=600.0).contains(&action.at_secs), "{name}");
                }
            }
        }
        assert!(fault_profile_by_name("meteor-strike", 600.0).is_none());
        let err = FAULT_PROFILE_REGISTRY.get("meteor-strike").unwrap_err();
        assert!(err.to_string().contains("single-link-cut"));
    }

    #[test]
    fn profiles_scale_with_the_run_duration() {
        let short = fault_profile_by_name("single-link-cut", 100.0).unwrap();
        let long = fault_profile_by_name("single-link-cut", 1000.0).unwrap();
        let tb = Testbed::build().unwrap();
        let short_c = short.compile(&tb, 1).unwrap();
        let long_c = long.compile(&tb, 1).unwrap();
        assert_eq!(short_c.first_onset_secs(), Some(30.0));
        assert_eq!(long_c.first_onset_secs(), Some(300.0));
    }

    #[test]
    fn profiles_compile_on_every_testbed_preset() {
        for &preset in gridapp::testbed_preset_names() {
            let spec = gridapp::TestbedSpec::by_name(preset).unwrap();
            let tb = Testbed::from_spec(&spec).unwrap();
            for &name in fault_profile_names() {
                fault_profile_by_name(name, 300.0)
                    .unwrap()
                    .compile(&tb, 7)
                    .unwrap_or_else(|e| panic!("{name} on {preset}: {e}"));
            }
        }
    }
}
