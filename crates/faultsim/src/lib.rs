//! # faultsim — deterministic fault injection for the grid testbed
//!
//! The paper's evaluation varies *load* (bandwidth competition, request
//! bursts) but never *availability*. This crate adds the missing dimension:
//! declarative, seeded fault schedules — link cuts and degradations, server
//! crashes and restarts, router outages, flapping, and correlated
//! multi-element cascades — that compile against a concrete testbed into a
//! replayable timeline of primitive mutations, applied through the `simnet`
//! fault hooks ([`simnet::Network::set_link_capacity`],
//! [`simnet::Network::set_node_down`]) and the `gridapp` crash/restart
//! operations.
//!
//! * [`schedule`] — the [`FaultEvent`] vocabulary, [`FaultSchedule`], and its
//!   deterministic compilation into [`TimedAction`]s,
//! * [`profile`] — the named presets the sweep matrix exposes
//!   (`single-link-cut`, `server-crash-midrun`, `flapping-core`, `cascade`),
//! * [`apply`] — executing a compiled action against a running [`gridapp::GridApp`],
//! * [`resilience`] — availability, downtime, MTTR, and
//!   violation-during-fault metrics computed from a run's latency series.
//!
//! **Determinism:** a `(schedule, seed)` pair always compiles to the same
//! timeline (seeded jitter uses [`simnet::SimRng`] sub-streams keyed by event
//! index), so a fault run replays bit-identically.

#![warn(missing_docs)]

pub mod apply;
pub mod profile;
pub mod resilience;
pub mod schedule;

pub use apply::{apply_action, apply_timed};
pub use profile::{fault_profile_by_name, fault_profile_names, FAULT_PROFILE_REGISTRY, NO_FAULTS};
pub use resilience::Resilience;
pub use schedule::{
    CompiledFaultSchedule, FaultAction, FaultError, FaultEvent, FaultSchedule, LinkRef, TimedAction,
};
