//! Declarative fault schedules and their deterministic compilation.
//!
//! A [`FaultSchedule`] is a serializable list of symbolic [`FaultEvent`]s —
//! links are named by their endpoints (`"R2"`–`"R3"`), servers and nodes by
//! their testbed names. [`FaultSchedule::compile`] resolves the symbols
//! against a concrete [`Testbed`] and expands compound events (flapping,
//! correlated cascades with seeded jitter) into a time-sorted list of
//! primitive [`TimedAction`]s, so a `(schedule, seed)` pair always replays
//! the same timeline.

use gridapp::Testbed;
use serde::{Deserialize, Serialize};
use simnet::{LinkId, NodeId, SimRng};

/// A link named by its two endpoints (e.g. routers `"R2"` and `"R3"`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkRef {
    /// One endpoint's node name.
    pub a: String,
    /// The other endpoint's node name.
    pub b: String,
}

impl LinkRef {
    /// Convenience constructor.
    pub fn between(a: impl Into<String>, b: impl Into<String>) -> Self {
        LinkRef {
            a: a.into(),
            b: b.into(),
        }
    }
}

/// One symbolic fault in a schedule. Times are in simulated seconds from the
/// start of the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Reduce a link to `factor` of its nominal capacity (0 = cut, 1 =
    /// healthy) at `at_secs`.
    LinkDegrade {
        /// The link to degrade.
        link: LinkRef,
        /// When to apply the degradation.
        at_secs: f64,
        /// Fraction of the nominal capacity left (clamped to `0..=1`).
        factor: f64,
    },
    /// Cut a link (capacity to zero) at `at_secs`.
    LinkCut {
        /// The link to cut.
        link: LinkRef,
        /// When to cut it.
        at_secs: f64,
    },
    /// Degrade only the `link.a` → `link.b` direction of a link to `factor`
    /// of its nominal capacity at `at_secs`, leaving the opposite direction
    /// intact — an asymmetric (grey) partition. A factor at or above 1
    /// restores symmetric operation.
    LinkDegradeOneWay {
        /// The link to degrade; traffic *from* `a` *towards* `b` is capped.
        link: LinkRef,
        /// When to apply the degradation.
        at_secs: f64,
        /// Fraction of the nominal capacity left in the degraded direction
        /// (clamped to `0..=1`; `1` lifts the degrade).
        factor: f64,
    },
    /// Restore a link to its nominal capacity at `at_secs`.
    LinkRestore {
        /// The link to restore.
        link: LinkRef,
        /// When to restore it.
        at_secs: f64,
    },
    /// Crash a server process at `at_secs` (it keeps its group assignment
    /// but serves nothing until failed over or restarted).
    ServerCrash {
        /// The runtime server name (e.g. `"S2"`).
        server: String,
        /// When it crashes.
        at_secs: f64,
    },
    /// Restart a crashed server process at `at_secs`.
    ServerRestart {
        /// The runtime server name.
        server: String,
        /// When it restarts.
        at_secs: f64,
    },
    /// Take a whole node (machine or router) down at `at_secs`: every
    /// adjacent link stops carrying traffic.
    NodeDown {
        /// The node's name (e.g. `"R3"`).
        node: String,
        /// When it goes down.
        at_secs: f64,
    },
    /// Bring a node back up at `at_secs`.
    NodeUp {
        /// The node's name.
        node: String,
        /// When it returns.
        at_secs: f64,
    },
    /// Flap a link: starting at `from_secs` the link is cut for `duty` of
    /// every `period_secs` cycle, then restored. No cycle starts at or after
    /// `until_secs`, and every down-interval is capped there, so the link is
    /// guaranteed restored by `until_secs` at the latest (the final restore
    /// fires at the end of the last down-interval).
    Flap {
        /// The link that flaps.
        link: LinkRef,
        /// When the flapping starts.
        from_secs: f64,
        /// When the flapping stops (link restored).
        until_secs: f64,
        /// Length of one down/up cycle in seconds.
        period_secs: f64,
        /// Fraction of each cycle the link spends down (clamped to `0..=1`).
        duty: f64,
    },
    /// A correlated multi-element outage: every child event fires at
    /// `at_secs` plus its own (relative) `at_secs` plus a seeded jitter drawn
    /// uniformly from `[0, jitter_secs)` — modelling faults that share a
    /// cause but do not land at exactly the same instant.
    Correlated {
        /// Base time of the outage.
        at_secs: f64,
        /// Maximum per-child jitter (seconds).
        jitter_secs: f64,
        /// The child events (their `at_secs` are offsets from `at_secs`;
        /// nesting further `Correlated` events is not allowed).
        events: Vec<FaultEvent>,
        /// Optional per-child severity factors, one per child event. A
        /// shared cause rarely damages every element equally: each factor
        /// multiplies the remaining-capacity fraction of the corresponding
        /// *degradation* child (`LinkDegrade` / `LinkDegradeOneWay`), so
        /// `0.5` halves what the child leaves standing (clamped to `0..=1`);
        /// non-degradation children ignore their factor. `None` keeps the
        /// historical uniform severity. The list must match the number of
        /// children.
        factors: Option<Vec<f64>>,
    },
}

/// Errors raised while compiling a schedule against a testbed.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// A node name did not resolve.
    UnknownNode(String),
    /// A link reference did not resolve to a direct link.
    UnknownLink(String, String),
    /// A server name did not resolve.
    UnknownServer(String),
    /// An event carried an invalid parameter (negative time, bad duty, …).
    Invalid(String),
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::UnknownNode(n) => write!(f, "unknown node: {n}"),
            FaultError::UnknownLink(a, b) => write!(f, "no direct link between {a} and {b}"),
            FaultError::UnknownServer(s) => write!(f, "unknown server: {s}"),
            FaultError::Invalid(m) => write!(f, "invalid fault event: {m}"),
        }
    }
}

impl std::error::Error for FaultError {}

/// A primitive, resolved fault mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Set a link's raw capacity (bits/second).
    SetLinkCapacity {
        /// The resolved link.
        link: LinkId,
        /// The new capacity.
        capacity_bps: f64,
    },
    /// Cap one direction of a link (a capacity at or above nominal lifts
    /// the cap).
    SetLinkOneWay {
        /// The resolved link.
        link: LinkId,
        /// The node the degraded direction leaves from.
        from: NodeId,
        /// The directional capacity cap.
        capacity_bps: f64,
    },
    /// Mark a node down or back up.
    SetNodeDown {
        /// The resolved node.
        node: NodeId,
        /// Down (`true`) or up (`false`).
        down: bool,
    },
    /// Crash a server process.
    CrashServer {
        /// The runtime server name.
        server: String,
    },
    /// Restart a crashed server process.
    RestartServer {
        /// The runtime server name.
        server: String,
    },
}

/// A resolved fault mutation with its firing time and a human-readable
/// label (recorded in the run trace).
#[derive(Debug, Clone, PartialEq)]
pub struct TimedAction {
    /// When the action fires (simulated seconds).
    pub at_secs: f64,
    /// Whether the action inflicts damage (an *onset*) as opposed to lifting
    /// it; onsets anchor the MTTR computation.
    pub is_onset: bool,
    /// Human-readable description for the trace.
    pub label: String,
    /// The mutation itself.
    pub action: FaultAction,
}

/// A declarative fault schedule: a list of symbolic events.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// The symbolic events, compiled in order.
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule (the `none` profile).
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the schedule injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Compiles the schedule against a testbed. Symbolic names resolve to
    /// node/link ids, compound events expand, and the result is sorted by
    /// firing time (ties broken by emission order). The same
    /// `(schedule, seed)` pair always produces the same timeline.
    pub fn compile(
        &self,
        testbed: &Testbed,
        seed: u64,
    ) -> Result<CompiledFaultSchedule, FaultError> {
        let root = SimRng::seed_from_u64(seed);
        let mut actions: Vec<TimedAction> = Vec::new();
        for (index, event) in self.events.iter().enumerate() {
            compile_event(event, 0.0, 1.0, testbed, &root, index as u64, &mut actions)?;
        }
        // Stable sort: simultaneous actions keep their emission order.
        actions.sort_by(|x, y| {
            x.at_secs
                .partial_cmp(&y.at_secs)
                .expect("times are not NaN")
        });
        let onsets: Vec<f64> = {
            let mut o: Vec<f64> = actions
                .iter()
                .filter(|a| a.is_onset)
                .map(|a| a.at_secs)
                .collect();
            o.dedup();
            o
        };
        Ok(CompiledFaultSchedule { actions, onsets })
    }
}

fn resolve_link(testbed: &Testbed, link: &LinkRef) -> Result<(LinkId, f64), FaultError> {
    let a = testbed
        .topology
        .node_by_name(&link.a)
        .ok_or_else(|| FaultError::UnknownNode(link.a.clone()))?;
    let b = testbed
        .topology
        .node_by_name(&link.b)
        .ok_or_else(|| FaultError::UnknownNode(link.b.clone()))?;
    let id = testbed
        .topology
        .link_between(a, b)
        .ok_or_else(|| FaultError::UnknownLink(link.a.clone(), link.b.clone()))?;
    let nominal = testbed
        .topology
        .link(id)
        .map_err(|_| FaultError::UnknownLink(link.a.clone(), link.b.clone()))?
        .capacity_bps;
    Ok((id, nominal))
}

fn check_time(at: f64) -> Result<(), FaultError> {
    if !at.is_finite() || at < 0.0 {
        return Err(FaultError::Invalid(format!("event time {at} is not valid")));
    }
    Ok(())
}

fn check_server(testbed: &Testbed, server: &str) -> Result<(), FaultError> {
    testbed
        .server_host(server)
        .map(|_| ())
        .ok_or_else(|| FaultError::UnknownServer(server.to_string()))
}

fn compile_event(
    event: &FaultEvent,
    offset: f64,
    severity: f64,
    testbed: &Testbed,
    root: &SimRng,
    stream: u64,
    out: &mut Vec<TimedAction>,
) -> Result<(), FaultError> {
    match event {
        FaultEvent::LinkDegrade {
            link,
            at_secs,
            factor,
        } => {
            check_time(*at_secs)?;
            let (id, nominal) = resolve_link(testbed, link)?;
            let factor = (factor * severity).clamp(0.0, 1.0);
            out.push(TimedAction {
                at_secs: offset + at_secs,
                is_onset: factor < 1.0,
                label: format!(
                    "link {}-{} degraded to {:.0}% capacity",
                    link.a,
                    link.b,
                    factor * 100.0
                ),
                action: FaultAction::SetLinkCapacity {
                    link: id,
                    capacity_bps: nominal * factor,
                },
            });
        }
        FaultEvent::LinkDegradeOneWay {
            link,
            at_secs,
            factor,
        } => {
            check_time(*at_secs)?;
            let (id, nominal) = resolve_link(testbed, link)?;
            let from = testbed
                .topology
                .node_by_name(&link.a)
                .ok_or_else(|| FaultError::UnknownNode(link.a.clone()))?;
            let factor = (factor * severity).clamp(0.0, 1.0);
            out.push(TimedAction {
                at_secs: offset + at_secs,
                is_onset: factor < 1.0,
                label: format!(
                    "link {}-{} degraded to {:.0}% capacity towards {}",
                    link.a,
                    link.b,
                    factor * 100.0,
                    link.b
                ),
                action: FaultAction::SetLinkOneWay {
                    link: id,
                    from,
                    capacity_bps: nominal * factor,
                },
            });
        }
        FaultEvent::LinkCut { link, at_secs } => {
            check_time(*at_secs)?;
            let (id, _) = resolve_link(testbed, link)?;
            out.push(TimedAction {
                at_secs: offset + at_secs,
                is_onset: true,
                label: format!("link {}-{} cut", link.a, link.b),
                action: FaultAction::SetLinkCapacity {
                    link: id,
                    capacity_bps: 0.0,
                },
            });
        }
        FaultEvent::LinkRestore { link, at_secs } => {
            check_time(*at_secs)?;
            let (id, nominal) = resolve_link(testbed, link)?;
            out.push(TimedAction {
                at_secs: offset + at_secs,
                is_onset: false,
                label: format!("link {}-{} restored", link.a, link.b),
                action: FaultAction::SetLinkCapacity {
                    link: id,
                    capacity_bps: nominal,
                },
            });
        }
        FaultEvent::ServerCrash { server, at_secs } => {
            check_time(*at_secs)?;
            check_server(testbed, server)?;
            out.push(TimedAction {
                at_secs: offset + at_secs,
                is_onset: true,
                label: format!("server {server} crashed"),
                action: FaultAction::CrashServer {
                    server: server.clone(),
                },
            });
        }
        FaultEvent::ServerRestart { server, at_secs } => {
            check_time(*at_secs)?;
            check_server(testbed, server)?;
            out.push(TimedAction {
                at_secs: offset + at_secs,
                is_onset: false,
                label: format!("server {server} restarted"),
                action: FaultAction::RestartServer {
                    server: server.clone(),
                },
            });
        }
        FaultEvent::NodeDown { node, at_secs } => {
            check_time(*at_secs)?;
            let id = testbed
                .topology
                .node_by_name(node)
                .ok_or_else(|| FaultError::UnknownNode(node.clone()))?;
            out.push(TimedAction {
                at_secs: offset + at_secs,
                is_onset: true,
                label: format!("node {node} down"),
                action: FaultAction::SetNodeDown {
                    node: id,
                    down: true,
                },
            });
        }
        FaultEvent::NodeUp { node, at_secs } => {
            check_time(*at_secs)?;
            let id = testbed
                .topology
                .node_by_name(node)
                .ok_or_else(|| FaultError::UnknownNode(node.clone()))?;
            out.push(TimedAction {
                at_secs: offset + at_secs,
                is_onset: false,
                label: format!("node {node} up"),
                action: FaultAction::SetNodeDown {
                    node: id,
                    down: false,
                },
            });
        }
        FaultEvent::Flap {
            link,
            from_secs,
            until_secs,
            period_secs,
            duty,
        } => {
            check_time(*from_secs)?;
            check_time(*until_secs)?;
            if *period_secs <= 0.0 || !period_secs.is_finite() {
                return Err(FaultError::Invalid(format!(
                    "flap period {period_secs} must be positive"
                )));
            }
            if until_secs <= from_secs {
                return Err(FaultError::Invalid(
                    "flap must end after it starts".to_string(),
                ));
            }
            let (id, nominal) = resolve_link(testbed, link)?;
            let duty = duty.clamp(0.0, 1.0);
            let mut t = *from_secs;
            while t < *until_secs {
                out.push(TimedAction {
                    at_secs: offset + t,
                    is_onset: true,
                    label: format!("link {}-{} flapped down", link.a, link.b),
                    action: FaultAction::SetLinkCapacity {
                        link: id,
                        capacity_bps: 0.0,
                    },
                });
                let up_at = (t + duty * period_secs).min(*until_secs);
                out.push(TimedAction {
                    at_secs: offset + up_at,
                    is_onset: false,
                    label: format!("link {}-{} flapped up", link.a, link.b),
                    action: FaultAction::SetLinkCapacity {
                        link: id,
                        capacity_bps: nominal,
                    },
                });
                t += period_secs;
            }
        }
        FaultEvent::Correlated {
            at_secs,
            jitter_secs,
            events,
            factors,
        } => {
            check_time(*at_secs)?;
            if *jitter_secs < 0.0 || !jitter_secs.is_finite() {
                return Err(FaultError::Invalid(format!(
                    "jitter {jitter_secs} must be non-negative"
                )));
            }
            if let Some(factors) = factors {
                if factors.len() != events.len() {
                    return Err(FaultError::Invalid(format!(
                        "{} per-child factors for {} children",
                        factors.len(),
                        events.len()
                    )));
                }
                if let Some(bad) = factors.iter().find(|f| !f.is_finite() || **f < 0.0) {
                    return Err(FaultError::Invalid(format!(
                        "per-child factor {bad} must be finite and non-negative"
                    )));
                }
            }
            for (child_index, child) in events.iter().enumerate() {
                if matches!(child, FaultEvent::Correlated { .. }) {
                    return Err(FaultError::Invalid(
                        "correlated events cannot nest".to_string(),
                    ));
                }
                // An independent jitter sub-stream per (event, child) pair:
                // consuming one child's jitter never perturbs another's.
                let mut rng = root.derive(stream).derive(child_index as u64);
                let jitter = if *jitter_secs > 0.0 {
                    rng.uniform_range(0.0, *jitter_secs)
                } else {
                    0.0
                };
                let child_severity = factors.as_ref().map(|f| f[child_index]).unwrap_or(1.0);
                compile_event(
                    child,
                    offset + at_secs + jitter,
                    child_severity,
                    testbed,
                    root,
                    stream,
                    out,
                )?;
            }
        }
    }
    Ok(())
}

/// A schedule compiled against a concrete testbed: primitive actions sorted
/// by firing time, plus the onset instants used by the resilience metrics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompiledFaultSchedule {
    /// The primitive mutations, sorted by `at_secs`.
    pub actions: Vec<TimedAction>,
    /// Times at which damage was inflicted (sorted, deduplicated per
    /// consecutive run).
    pub onsets: Vec<f64>,
}

impl CompiledFaultSchedule {
    /// Whether the timeline contains any action.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// The first moment damage is inflicted, if any.
    pub fn first_onset_secs(&self) -> Option<f64> {
        self.onsets.first().copied()
    }

    /// The last action's firing time, if any.
    pub fn last_action_secs(&self) -> Option<f64> {
        self.actions.last().map(|a| a.at_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn testbed() -> Testbed {
        Testbed::build().unwrap()
    }

    #[test]
    fn link_cut_and_restore_compile_to_capacity_mutations() {
        let tb = testbed();
        let schedule = FaultSchedule {
            events: vec![
                FaultEvent::LinkCut {
                    link: LinkRef::between("R2", "R3"),
                    at_secs: 100.0,
                },
                FaultEvent::LinkRestore {
                    link: LinkRef::between("R2", "R3"),
                    at_secs: 300.0,
                },
            ],
        };
        let compiled = schedule.compile(&tb, 42).unwrap();
        assert_eq!(compiled.actions.len(), 2);
        assert_eq!(compiled.onsets, vec![100.0]);
        assert_eq!(compiled.first_onset_secs(), Some(100.0));
        assert_eq!(compiled.last_action_secs(), Some(300.0));
        match &compiled.actions[0].action {
            FaultAction::SetLinkCapacity { link, capacity_bps } => {
                assert_eq!(*link, tb.link_c34_sg1);
                assert_eq!(*capacity_bps, 0.0);
            }
            other => panic!("unexpected action: {other:?}"),
        }
        match &compiled.actions[1].action {
            FaultAction::SetLinkCapacity { capacity_bps, .. } => {
                assert_eq!(*capacity_bps, gridapp::LINK_CAPACITY_BPS);
            }
            other => panic!("unexpected action: {other:?}"),
        }
    }

    #[test]
    fn degrade_scales_the_nominal_capacity_and_clamps_the_factor() {
        let tb = testbed();
        let schedule = FaultSchedule {
            events: vec![FaultEvent::LinkDegrade {
                link: LinkRef::between("R2", "R3"),
                at_secs: 10.0,
                factor: 0.25,
            }],
        };
        let compiled = schedule.compile(&tb, 0).unwrap();
        match &compiled.actions[0].action {
            FaultAction::SetLinkCapacity { capacity_bps, .. } => {
                assert!((capacity_bps - gridapp::LINK_CAPACITY_BPS * 0.25).abs() < 1.0);
            }
            other => panic!("unexpected action: {other:?}"),
        }
        assert!(compiled.actions[0].is_onset);
        // A factor of 1.0 is a restore, not an onset.
        let healthy = FaultSchedule {
            events: vec![FaultEvent::LinkDegrade {
                link: LinkRef::between("R2", "R3"),
                at_secs: 10.0,
                factor: 3.0,
            }],
        };
        assert!(!healthy.compile(&tb, 0).unwrap().actions[0].is_onset);
    }

    #[test]
    fn oneway_degrade_compiles_to_a_directional_cap_and_lifts_at_factor_one() {
        let tb = testbed();
        let schedule = FaultSchedule {
            events: vec![
                FaultEvent::LinkDegradeOneWay {
                    link: LinkRef::between("R2", "R3"),
                    at_secs: 50.0,
                    factor: 0.1,
                },
                FaultEvent::LinkDegradeOneWay {
                    link: LinkRef::between("R2", "R3"),
                    at_secs: 150.0,
                    factor: 1.0,
                },
            ],
        };
        let compiled = schedule.compile(&tb, 42).unwrap();
        assert_eq!(compiled.actions.len(), 2);
        // Only the degrade (factor < 1) is an onset; the factor-1 event is
        // the restore.
        assert_eq!(compiled.onsets, vec![50.0]);
        let r2 = tb.topology.node_by_name("R2").unwrap();
        match &compiled.actions[0].action {
            FaultAction::SetLinkOneWay {
                link,
                from,
                capacity_bps,
            } => {
                assert_eq!(*link, tb.link_c34_sg1);
                assert_eq!(*from, r2, "degraded direction leaves the R2 side");
                assert!((capacity_bps - gridapp::LINK_CAPACITY_BPS * 0.1).abs() < 1.0);
            }
            other => panic!("unexpected action: {other:?}"),
        }
        match &compiled.actions[1].action {
            FaultAction::SetLinkOneWay { capacity_bps, .. } => {
                assert_eq!(*capacity_bps, gridapp::LINK_CAPACITY_BPS);
            }
            other => panic!("unexpected action: {other:?}"),
        }
        assert!(compiled.actions[0].label.contains("towards R3"));
        // Unknown endpoints are rejected like every other link event.
        let bad = FaultSchedule {
            events: vec![FaultEvent::LinkDegradeOneWay {
                link: LinkRef::between("R9", "R3"),
                at_secs: 1.0,
                factor: 0.5,
            }],
        };
        assert_eq!(
            bad.compile(&tb, 0),
            Err(FaultError::UnknownNode("R9".into()))
        );
    }

    #[test]
    fn oneway_degrade_applies_end_to_end_and_hits_one_direction_only() {
        use gridapp::{GridApp, GridConfig, SERVER_GROUP_1};
        use simnet::SimTime;
        let mut app = GridApp::build(GridConfig::default()).unwrap();
        let schedule = FaultSchedule {
            events: vec![FaultEvent::LinkDegradeOneWay {
                // Degrade R3 → R2: replies from Server Group 1 towards the
                // squeezed clients crawl, while requests travelling R2 → R3
                // keep the full link.
                link: LinkRef::between("R3", "R2"),
                at_secs: 10.0,
                factor: 0.001,
            }],
        };
        let compiled = schedule.compile(app.testbed(), 42).unwrap();
        for timed in &compiled.actions {
            crate::apply_action(&mut app, SimTime::from_secs(timed.at_secs), &timed.action)
                .unwrap();
        }
        // remos (server → client direction) sees the degraded direction.
        let towards_client = app.remos_get_flow("User3", SERVER_GROUP_1).unwrap();
        assert!(
            towards_client < 0.01 * gridapp::LINK_CAPACITY_BPS,
            "degraded direction: {towards_client}"
        );
        // The mutation is in the audit trail.
        assert_eq!(
            app.network_mutation_trace().count(simnet::TraceKind::Fault),
            1
        );
    }

    #[test]
    fn flap_expands_into_alternating_cut_restore_pairs() {
        let tb = testbed();
        let schedule = FaultSchedule {
            events: vec![FaultEvent::Flap {
                link: LinkRef::between("R2", "R3"),
                from_secs: 100.0,
                until_secs: 200.0,
                period_secs: 40.0,
                duty: 0.5,
            }],
        };
        let compiled = schedule.compile(&tb, 7).unwrap();
        // Cycles at 100, 140, 180: three cuts, three restores.
        assert_eq!(compiled.actions.len(), 6);
        assert_eq!(compiled.onsets.len(), 3);
        let times: Vec<f64> = compiled.actions.iter().map(|a| a.at_secs).collect();
        assert_eq!(times, vec![100.0, 120.0, 140.0, 160.0, 180.0, 200.0]);
        // The last action restores the link.
        match &compiled.actions[5].action {
            FaultAction::SetLinkCapacity { capacity_bps, .. } => {
                assert!(*capacity_bps > 0.0);
            }
            other => panic!("unexpected action: {other:?}"),
        }
    }

    #[test]
    fn correlated_events_jitter_deterministically_with_the_seed() {
        let tb = testbed();
        let schedule = FaultSchedule {
            events: vec![FaultEvent::Correlated {
                at_secs: 100.0,
                jitter_secs: 20.0,
                events: vec![
                    FaultEvent::NodeDown {
                        node: "R3".into(),
                        at_secs: 0.0,
                    },
                    FaultEvent::ServerCrash {
                        server: "S1".into(),
                        at_secs: 0.0,
                    },
                ],
                factors: None,
            }],
        };
        let a = schedule.compile(&tb, 42).unwrap();
        let b = schedule.compile(&tb, 42).unwrap();
        assert_eq!(a, b, "same seed, same timeline");
        let c = schedule.compile(&tb, 43).unwrap();
        assert_ne!(
            a.actions.iter().map(|x| x.at_secs).collect::<Vec<_>>(),
            c.actions.iter().map(|x| x.at_secs).collect::<Vec<_>>(),
            "different seed, different jitter"
        );
        for action in &a.actions {
            assert!(
                (100.0..120.0).contains(&action.at_secs),
                "jitter stays within the window: {}",
                action.at_secs
            );
        }
    }

    #[test]
    fn compile_rejects_bad_references_and_parameters() {
        let tb = testbed();
        let unknown_node = FaultSchedule {
            events: vec![FaultEvent::NodeDown {
                node: "R9".into(),
                at_secs: 1.0,
            }],
        };
        assert_eq!(
            unknown_node.compile(&tb, 0),
            Err(FaultError::UnknownNode("R9".into()))
        );
        let no_link = FaultSchedule {
            events: vec![FaultEvent::LinkCut {
                link: LinkRef::between("R1", "R5"),
                at_secs: 1.0,
            }],
        };
        assert_eq!(
            no_link.compile(&tb, 0),
            Err(FaultError::UnknownLink("R1".into(), "R5".into()))
        );
        let unknown_server = FaultSchedule {
            events: vec![FaultEvent::ServerCrash {
                server: "S99".into(),
                at_secs: 1.0,
            }],
        };
        assert_eq!(
            unknown_server.compile(&tb, 0),
            Err(FaultError::UnknownServer("S99".into()))
        );
        let negative_time = FaultSchedule {
            events: vec![FaultEvent::ServerCrash {
                server: "S1".into(),
                at_secs: -1.0,
            }],
        };
        assert!(matches!(
            negative_time.compile(&tb, 0),
            Err(FaultError::Invalid(_))
        ));
        let bad_flap = FaultSchedule {
            events: vec![FaultEvent::Flap {
                link: LinkRef::between("R2", "R3"),
                from_secs: 10.0,
                until_secs: 5.0,
                period_secs: 1.0,
                duty: 0.5,
            }],
        };
        assert!(matches!(
            bad_flap.compile(&tb, 0),
            Err(FaultError::Invalid(_))
        ));
        let nested = FaultSchedule {
            events: vec![FaultEvent::Correlated {
                at_secs: 1.0,
                jitter_secs: 0.0,
                events: vec![FaultEvent::Correlated {
                    at_secs: 0.0,
                    jitter_secs: 0.0,
                    events: vec![],
                    factors: None,
                }],
                factors: None,
            }],
        };
        assert!(matches!(
            nested.compile(&tb, 0),
            Err(FaultError::Invalid(_))
        ));
    }

    #[test]
    fn per_child_factors_scale_degradation_children_individually() {
        let tb = testbed();
        let base = |factors: Option<Vec<f64>>| FaultSchedule {
            events: vec![FaultEvent::Correlated {
                at_secs: 50.0,
                jitter_secs: 0.0,
                events: vec![
                    FaultEvent::LinkDegrade {
                        link: LinkRef::between("R1", "R3"),
                        at_secs: 0.0,
                        factor: 0.8,
                    },
                    FaultEvent::LinkDegrade {
                        link: LinkRef::between("R2", "R3"),
                        at_secs: 0.0,
                        factor: 0.8,
                    },
                    // A non-degradation child ignores its factor.
                    FaultEvent::ServerCrash {
                        server: "S1".into(),
                        at_secs: 0.0,
                    },
                ],
                factors,
            }],
        };
        let uniform = base(None).compile(&tb, 9).unwrap();
        let weighted = base(Some(vec![0.5, 0.25, 0.0])).compile(&tb, 9).unwrap();
        // Same timeline shape (the factors never consume randomness), so the
        // jitterless firing times are identical.
        assert_eq!(uniform.actions.len(), weighted.actions.len());
        let caps = |compiled: &CompiledFaultSchedule| -> Vec<f64> {
            compiled
                .actions
                .iter()
                .filter_map(|a| match &a.action {
                    FaultAction::SetLinkCapacity { capacity_bps, .. } => Some(*capacity_bps),
                    _ => None,
                })
                .collect()
        };
        let nominal = gridapp::LINK_CAPACITY_BPS;
        assert_eq!(caps(&uniform), vec![nominal * 0.8, nominal * 0.8]);
        let weighted_caps = caps(&weighted);
        assert!(
            (weighted_caps[0] - nominal * 0.4).abs() < 1.0,
            "{weighted_caps:?}"
        );
        assert!(
            (weighted_caps[1] - nominal * 0.2).abs() < 1.0,
            "{weighted_caps:?}"
        );
        // The crash child is unaffected by its (zero) factor.
        assert!(weighted
            .actions
            .iter()
            .any(|a| matches!(&a.action, FaultAction::CrashServer { server } if server == "S1")));
        // Replays are bit-identical.
        assert_eq!(
            weighted,
            base(Some(vec![0.5, 0.25, 0.0])).compile(&tb, 9).unwrap()
        );
    }

    #[test]
    fn per_child_factors_are_validated() {
        let tb = testbed();
        let wrong_arity = FaultSchedule {
            events: vec![FaultEvent::Correlated {
                at_secs: 1.0,
                jitter_secs: 0.0,
                events: vec![FaultEvent::ServerCrash {
                    server: "S1".into(),
                    at_secs: 0.0,
                }],
                factors: Some(vec![0.5, 0.5]),
            }],
        };
        assert!(matches!(
            wrong_arity.compile(&tb, 0),
            Err(FaultError::Invalid(_))
        ));
        let negative = FaultSchedule {
            events: vec![FaultEvent::Correlated {
                at_secs: 1.0,
                jitter_secs: 0.0,
                events: vec![FaultEvent::LinkDegrade {
                    link: LinkRef::between("R2", "R3"),
                    at_secs: 0.0,
                    factor: 0.5,
                }],
                factors: Some(vec![-1.0]),
            }],
        };
        assert!(matches!(
            negative.compile(&tb, 0),
            Err(FaultError::Invalid(_))
        ));
    }

    #[test]
    fn empty_schedule_compiles_to_nothing() {
        let compiled = FaultSchedule::none().compile(&testbed(), 42).unwrap();
        assert!(compiled.is_empty());
        assert!(compiled.first_onset_secs().is_none());
        assert!(compiled.last_action_secs().is_none());
        assert!(FaultSchedule::none().is_empty());
    }

    #[test]
    fn schedules_serialise() {
        let schedule = FaultSchedule {
            events: vec![FaultEvent::ServerCrash {
                server: "S2".into(),
                at_secs: 120.0,
            }],
        };
        let content = serde::Serialize::to_content(&schedule);
        match content {
            serde::Content::Map(fields) => assert_eq!(fields[0].0, "events"),
            other => panic!("unexpected content: {other:?}"),
        }
    }
}
