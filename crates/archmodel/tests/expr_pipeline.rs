//! Focused tests for the constraint-expression pipeline: lexer → parser →
//! evaluator round-trips, operator precedence, and error reporting. The
//! expression language is the hot path of constraint checking, so each layer
//! gets direct coverage here in addition to the end-to-end suites.

use archmodel::expr::{eval, tokenize, EvalError, EvalValue, ParseError, Token};
use archmodel::style::{props, ClientServerStyle};
use archmodel::{eval_bool, parse, BinOp, Bindings, Expr, System, UnaryOp, Value};

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[test]
fn lexer_distinguishes_integers_and_floats() {
    assert_eq!(tokenize("3").unwrap(), vec![Token::Integer(3)]);
    assert_eq!(tokenize("3.5").unwrap(), vec![Token::Number(3.5)]);
}

#[test]
fn lexer_recognises_compound_operators() {
    assert_eq!(
        tokenize("a <= b >= c == d != e -> f").unwrap(),
        vec![
            Token::Ident("a".into()),
            Token::Le,
            Token::Ident("b".into()),
            Token::Ge,
            Token::Ident("c".into()),
            Token::EqEq,
            Token::Ident("d".into()),
            Token::Ne,
            Token::Ident("e".into()),
            Token::Arrow,
            Token::Ident("f".into()),
        ]
    );
}

#[test]
fn lexer_recognises_keywords_and_punctuation() {
    assert_eq!(
        tokenize("exists s : T in components | true").unwrap(),
        vec![
            Token::Exists,
            Token::Ident("s".into()),
            Token::Colon,
            Token::Ident("T".into()),
            Token::In,
            Token::Ident("components".into()),
            Token::Pipe,
            Token::True,
        ]
    );
}

#[test]
fn lexer_rejects_unknown_characters() {
    assert!(tokenize("a @ b").is_err());
    assert!(tokenize("latency # 3").is_err());
}

// ---------------------------------------------------------------------------
// Parser: precedence and structure
// ---------------------------------------------------------------------------

fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    Expr::bin(op, lhs, rhs)
}

#[test]
fn multiplication_binds_tighter_than_addition() {
    assert_eq!(
        parse("1 + 2 * 3").unwrap(),
        bin(
            BinOp::Add,
            Expr::int(1),
            bin(BinOp::Mul, Expr::int(2), Expr::int(3))
        )
    );
}

#[test]
fn comparison_binds_tighter_than_logic() {
    assert_eq!(
        parse("a < 1 and b > 2").unwrap(),
        bin(
            BinOp::And,
            bin(BinOp::Lt, Expr::ident("a"), Expr::int(1)),
            bin(BinOp::Gt, Expr::ident("b"), Expr::int(2)),
        )
    );
}

#[test]
fn and_binds_tighter_than_or_and_implies_is_loosest() {
    assert_eq!(
        parse("a or b and c").unwrap(),
        bin(
            BinOp::Or,
            Expr::ident("a"),
            bin(BinOp::And, Expr::ident("b"), Expr::ident("c")),
        )
    );
    assert_eq!(
        parse("a and b -> c or d").unwrap(),
        bin(
            BinOp::Implies,
            bin(BinOp::And, Expr::ident("a"), Expr::ident("b")),
            bin(BinOp::Or, Expr::ident("c"), Expr::ident("d")),
        )
    );
}

#[test]
fn parentheses_override_precedence() {
    assert_eq!(
        parse("(1 + 2) * 3").unwrap(),
        bin(
            BinOp::Mul,
            bin(BinOp::Add, Expr::int(1), Expr::int(2)),
            Expr::int(3)
        )
    );
}

#[test]
fn negation_applies_before_binary_logic() {
    assert_eq!(
        parse("not a and b").unwrap(),
        bin(
            BinOp::And,
            Expr::Unary(UnaryOp::Not, Box::new(Expr::ident("a"))),
            Expr::ident("b"),
        )
    );
}

#[test]
fn property_access_chains_left_to_right() {
    assert_eq!(
        parse("Grp.server.load").unwrap(),
        Expr::prop(Expr::prop(Expr::ident("Grp"), "server"), "load")
    );
}

#[test]
fn quantifier_parses_with_type_filter() {
    let expr = parse("exists s : ServerGroupT in components | s.load > 2").unwrap();
    match expr {
        Expr::Quantifier {
            var, type_filter, ..
        } => {
            assert_eq!(var, "s");
            assert_eq!(type_filter.as_deref(), Some("ServerGroupT"));
        }
        other => panic!("expected quantifier, got {other:?}"),
    }
}

#[test]
fn parser_reports_truncated_and_trailing_input() {
    let err: ParseError = parse("1 +").unwrap_err();
    assert!(!err.message.is_empty());
    assert!(parse("(a").is_err());
    assert!(parse("1 2").is_err());
    assert!(parse("").is_err());
    assert!(parse("exists s in components").is_err()); // missing `| body`
}

// ---------------------------------------------------------------------------
// Evaluator round-trips (text → tokens → AST → value)
// ---------------------------------------------------------------------------

fn example() -> System {
    ClientServerStyle::example_system("expr-tests", 2, 2, 3).expect("example system builds")
}

fn eval_text(system: &System, text: &str) -> EvalValue {
    eval(&parse(text).unwrap(), system, &Bindings::new()).unwrap()
}

#[test]
fn arithmetic_round_trip_matches_rust_semantics() {
    let sys = System::new("empty");
    for (text, expected) in [
        ("1 + 2 * 3", 7.0),
        ("(1 + 2) * 3", 9.0),
        ("10 / 4", 2.5),
        ("2 - 3 - 4", -5.0),
        ("-3 + 10", 7.0),
    ] {
        let got = eval_text(&sys, text).as_f64().unwrap();
        assert!(
            (got - expected).abs() < 1e-12,
            "{text}: {got} != {expected}"
        );
    }
}

#[test]
fn boolean_operators_round_trip() {
    let sys = System::new("empty");
    for (text, expected) in [
        ("true and false", false),
        ("true or false", true),
        ("not false", true),
        ("false -> true", true),
        ("true -> false", false),
        ("1 < 2 and 2 <= 2 and 3 > 2 and 3 >= 3", true),
        ("1 == 1 and 1 != 2", true),
    ] {
        let got = eval_bool(&parse(text).unwrap(), &sys, &Bindings::new()).unwrap();
        assert_eq!(got, expected, "{text}");
    }
}

#[test]
fn system_properties_resolve_as_identifiers() {
    let sys = example();
    // example_system sets maxLatency = 2.0 on the system.
    assert!(eval_bool(&parse("maxLatency == 2.0").unwrap(), &sys, &Bindings::new()).unwrap());
}

#[test]
fn component_property_round_trip() {
    let mut sys = example();
    let client = sys.component_by_name("User1").unwrap();
    sys.component_mut(client)
        .unwrap()
        .properties
        .set(props::AVERAGE_LATENCY, 1.25);
    assert!(eval_bool(
        &parse("User1.averageLatency <= maxLatency").unwrap(),
        &sys,
        &Bindings::new()
    )
    .unwrap());
    let got = eval_text(&sys, "User1.averageLatency * 4")
        .as_f64()
        .unwrap();
    assert!((got - 5.0).abs() < 1e-12);
}

#[test]
fn quantifiers_evaluate_over_the_component_graph() {
    let sys = example();
    // Two groups exist, each with a replicationCount property.
    assert!(eval_bool(
        &parse("exists g : ServerGroupT in components | g.replicationCount >= 1").unwrap(),
        &sys,
        &Bindings::new()
    )
    .unwrap());
    assert!(eval_bool(
        &parse("forall g : ServerGroupT in components | g.replicationCount == 2").unwrap(),
        &sys,
        &Bindings::new()
    )
    .unwrap());
    // select returns the matching elements; size() counts them.
    let got = eval_text(&sys, "size(select c : ClientT in components | true) == 3");
    assert_eq!(got.as_bool(), Some(true));
}

#[test]
fn string_literals_compare() {
    let sys = System::new("empty");
    assert!(eval_bool(
        &parse("\"abc\" == \"abc\"").unwrap(),
        &sys,
        &Bindings::new()
    )
    .unwrap());
}

#[test]
fn bindings_shadow_system_properties() {
    let sys = example();
    let mut bindings = Bindings::new();
    bindings.insert("maxLatency".to_string(), EvalValue::Val(Value::Float(99.0)));
    assert!(eval_bool(&parse("maxLatency > 50").unwrap(), &sys, &bindings).unwrap());
}

// ---------------------------------------------------------------------------
// Evaluator error cases
// ---------------------------------------------------------------------------

#[test]
fn unknown_identifier_is_reported() {
    let sys = System::new("empty");
    let err = eval(&parse("noSuchThing + 1").unwrap(), &sys, &Bindings::new()).unwrap_err();
    assert!(matches!(err, EvalError::UnknownIdentifier(name) if name == "noSuchThing"));
}

#[test]
fn unknown_function_is_reported() {
    let sys = System::new("empty");
    let err = eval(&parse("frobnicate(1)").unwrap(), &sys, &Bindings::new()).unwrap_err();
    assert!(matches!(err, EvalError::UnknownFunction(name) if name == "frobnicate"));
}

#[test]
fn type_mismatches_are_reported() {
    let sys = System::new("empty");
    // Arithmetic on a boolean.
    assert!(eval(&parse("1 + true").unwrap(), &sys, &Bindings::new()).is_err());
    // eval_bool on a numeric result.
    let err = eval_bool(&parse("1 + 2").unwrap(), &sys, &Bindings::new()).unwrap_err();
    assert!(matches!(err, EvalError::TypeMismatch(_)));
}

#[test]
fn bad_arity_is_reported() {
    let sys = example();
    let err = eval(&parse("size()").unwrap(), &sys, &Bindings::new()).unwrap_err();
    assert!(matches!(err, EvalError::BadArguments(_)));
}
