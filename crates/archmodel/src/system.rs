//! The architectural model of a running system: a graph of components and
//! connectors with attachments, properties, and hierarchy.

use crate::element::{
    Attachment, Component, ComponentId, Connector, ConnectorId, ElementRef, Port, PortId, Role,
    RoleId,
};
use crate::key::Key;
use crate::property::PropertyMap;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The property-change journal carried by a [`System`].
///
/// Every property write that goes through the model-update path (the
/// journaled setters below and the name-addressed change ops built on them)
/// records a `(element, key)` dirty entry tagged with the current epoch;
/// structural mutations (add/remove of components, connectors, ports, roles,
/// attachments) set a conservative *structural* flag instead of tracking
/// fine-grained entries. Dirty entries live in ordered sets, so iteration —
/// and everything derived from it — is deterministic.
///
/// The journal is bookkeeping, not model state: it is excluded from
/// equality, comparison and serialization of the owning system.
#[derive(Debug, Clone, Default)]
struct ChangeJournal {
    /// Epoch stamp for the entries currently accumulating; bumped by each
    /// [`System::drain_changes`].
    epoch: u64,
    /// Dirty `(element, property)` pairs, in element-then-key order.
    dirty: BTreeSet<(ElementRef, Key)>,
    /// Dirty system-level properties, in name order.
    dirty_system: BTreeSet<Key>,
    /// True when a structural mutation happened since the last drain.
    structural: bool,
}

/// The batch of changes accumulated since the previous
/// [`System::drain_changes`] call, tagged with the epoch it covers.
#[derive(Debug, Clone, Default)]
pub struct ModelDelta {
    /// The journal epoch these entries were recorded under.
    pub epoch: u64,
    /// Dirty `(element, property)` pairs, in element-then-key order.
    pub dirty: BTreeSet<(ElementRef, Key)>,
    /// Dirty system-level properties, in name order.
    pub dirty_system: BTreeSet<Key>,
    /// True when any structural mutation happened: consumers must fall back
    /// to a full re-scan.
    pub structural: bool,
}

impl ModelDelta {
    /// True when nothing changed at all since the previous drain.
    pub fn is_empty(&self) -> bool {
        !self.structural && self.dirty.is_empty() && self.dirty_system.is_empty()
    }
}

/// Errors raised by model manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Component id not present in the system.
    UnknownComponent(ComponentId),
    /// Connector id not present in the system.
    UnknownConnector(ConnectorId),
    /// Port id not present in the system.
    UnknownPort(PortId),
    /// Role id not present in the system.
    UnknownRole(RoleId),
    /// A component with this name already exists.
    DuplicateName(String),
    /// The port or role is already attached.
    AlreadyAttached(PortId, RoleId),
    /// No such attachment exists.
    NotAttached(PortId, RoleId),
    /// The referenced component name was not found.
    NameNotFound(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::UnknownComponent(id) => write!(f, "unknown component #{}", id.0),
            ModelError::UnknownConnector(id) => write!(f, "unknown connector #{}", id.0),
            ModelError::UnknownPort(id) => write!(f, "unknown port #{}", id.0),
            ModelError::UnknownRole(id) => write!(f, "unknown role #{}", id.0),
            ModelError::DuplicateName(n) => write!(f, "duplicate element name: {n}"),
            ModelError::AlreadyAttached(p, r) => {
                write!(f, "port #{} / role #{} already attached", p.0, r.0)
            }
            ModelError::NotAttached(p, r) => {
                write!(f, "port #{} / role #{} not attached", p.0, r.0)
            }
            ModelError::NameNotFound(n) => write!(f, "no element named {n}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// The architectural model: components, connectors, ports, roles, and
/// attachments, plus system-level properties (e.g. task-layer thresholds).
///
/// Name lookups (`component_by_name` and friends) are O(1) through interned
/// [`Key`] indices — the model update path resolves thousands of gauge
/// readings per control tick. Element names are immutable once added
/// (nothing in the workspace renames in place; use remove + add), which is
/// what keeps the indices trivially consistent.
///
/// Attachment adjacency (`roles_attached_to_port`, `attached`, …) and
/// per-connector role-name resolution are likewise indexed: a bulk repair at
/// fleet scale detaches and re-attaches tens of thousands of client roles on
/// one shared service connector, and a linear scan of the attachment list or
/// the connector's role list per operation turns that into a quadratic stall.
/// The `attachments` vector stays the canonical (ordered, serialized)
/// representation; the indices mirror it and preserve its relative order.
#[derive(Debug, Clone, Default)]
pub struct System {
    /// The system's name.
    pub name: String,
    /// System-level properties (e.g. `maxLatency`, `maxServerLoad`,
    /// `minBandwidth` set by the task layer).
    pub properties: PropertyMap,
    components: BTreeMap<ComponentId, Component>,
    connectors: BTreeMap<ConnectorId, Connector>,
    ports: BTreeMap<PortId, Port>,
    roles: BTreeMap<RoleId, Role>,
    attachments: Vec<Attachment>,
    next_id: u32,
    component_names: HashMap<Key, ComponentId>,
    connector_names: HashMap<Key, ConnectorId>,
    /// First (lowest-id) role carrying each name plus how many roles carry
    /// it — role names are not enforced unique, and lookups keep the
    /// historic first-match semantics. The count makes removal O(1) for
    /// unique names (the overwhelmingly common case); a promotion scan runs
    /// only when duplicates actually exist.
    role_names: HashMap<Key, (RoleId, u32)>,
    /// First role with a given name within one connector (attachment-order
    /// first, i.e. the earliest entry of `Connector::roles`), plus the
    /// duplicate count — the resolver behind name-addressed `ModelOp`s.
    connector_role_names: HashMap<(ConnectorId, Key), (RoleId, u32)>,
    /// Roles attached to each port, in attachment order.
    attachments_by_port: HashMap<PortId, Vec<RoleId>>,
    /// Ports attached to each role, in attachment order.
    attachments_by_role: HashMap<RoleId, Vec<PortId>>,
    /// Change journal feeding incremental constraint checking. Like the name
    /// indices this is derived bookkeeping: excluded from equality and
    /// serialization.
    journal: ChangeJournal,
}

impl PartialEq for System {
    // Semantic fields only: the name and adjacency indices are derived data
    // (and e.g. an emptied-then-removed index entry vs a never-created one
    // must not make two otherwise identical models compare unequal).
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.properties == other.properties
            && self.components == other.components
            && self.connectors == other.connectors
            && self.ports == other.ports
            && self.roles == other.roles
            && self.attachments == other.attachments
            && self.next_id == other.next_id
    }
}

impl Serialize for System {
    // Hand-written to keep the serialized shape free of the redundant name
    // indices (and identical to the pre-index derive output).
    fn to_content(&self) -> serde::Content {
        serde::Content::Map(vec![
            ("name".to_string(), self.name.to_content()),
            ("properties".to_string(), self.properties.to_content()),
            ("components".to_string(), self.components.to_content()),
            ("connectors".to_string(), self.connectors.to_content()),
            ("ports".to_string(), self.ports.to_content()),
            ("roles".to_string(), self.roles.to_content()),
            ("attachments".to_string(), self.attachments.to_content()),
            ("next_id".to_string(), self.next_id.to_content()),
        ])
    }
}

impl Deserialize for System {}

impl System {
    /// Creates an empty system with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        System {
            name: name.into(),
            ..Default::default()
        }
    }

    fn fresh_id(&mut self) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    // ---- change journal --------------------------------------------------

    /// Takes the batch of changes accumulated since the previous drain and
    /// opens the next journal epoch. The incremental constraint checker
    /// calls this once per check.
    pub fn drain_changes(&mut self) -> ModelDelta {
        let delta = ModelDelta {
            epoch: self.journal.epoch,
            dirty: std::mem::take(&mut self.journal.dirty),
            dirty_system: std::mem::take(&mut self.journal.dirty_system),
            structural: std::mem::replace(&mut self.journal.structural, false),
        };
        self.journal.epoch += 1;
        delta
    }

    /// The epoch currently accumulating entries (bumped on each drain).
    pub fn journal_epoch(&self) -> u64 {
        self.journal.epoch
    }

    /// Number of dirty entries (element-level plus system-level) pending in
    /// the journal. Bounded by elements × properties: entries are sets, so
    /// repeated writes between drains do not grow the journal.
    pub fn pending_changes(&self) -> usize {
        self.journal.dirty.len() + self.journal.dirty_system.len()
    }

    /// True when a structural mutation happened since the last drain.
    pub fn has_structural_changes(&self) -> bool {
        self.journal.structural
    }

    // ---- components ------------------------------------------------------

    /// Adds a top-level component of the given type.
    pub fn add_component(
        &mut self,
        name: impl Into<String>,
        ctype: impl Into<String>,
    ) -> Result<ComponentId, ModelError> {
        let name = name.into();
        let key = Key::new(&name);
        if self.component_names.contains_key(&key) {
            return Err(ModelError::DuplicateName(name));
        }
        let id = ComponentId(self.fresh_id());
        self.journal.structural = true;
        self.component_names.insert(key, id);
        self.components.insert(
            id,
            Component {
                name,
                ctype: ctype.into(),
                properties: PropertyMap::new(),
                ports: Vec::new(),
                parent: None,
                children: Vec::new(),
            },
        );
        Ok(id)
    }

    /// Adds a component inside another component's representation (e.g. a
    /// replicated server inside its server group).
    pub fn add_child_component(
        &mut self,
        parent: ComponentId,
        name: impl Into<String>,
        ctype: impl Into<String>,
    ) -> Result<ComponentId, ModelError> {
        self.check_component(parent)?;
        let id = self.add_component(name, ctype)?;
        self.components.get_mut(&id).expect("just inserted").parent = Some(parent);
        self.components
            .get_mut(&parent)
            .expect("checked above")
            .children
            .push(id);
        Ok(id)
    }

    /// Removes a component, its ports, their attachments, and (recursively)
    /// its children.
    pub fn remove_component(&mut self, id: ComponentId) -> Result<(), ModelError> {
        self.check_component(id)?;
        self.journal.structural = true;
        // Remove children first.
        let children = self.components[&id].children.clone();
        for child in children {
            // A child may already have been removed explicitly.
            if self.components.contains_key(&child) {
                self.remove_component(child)?;
            }
        }
        let comp = self.components.remove(&id).expect("checked above");
        self.component_names.remove(&Key::new(&comp.name));
        let mut any_attached = false;
        for port in &comp.ports {
            any_attached |= self.unindex_port_attachments(*port);
            self.ports.remove(port);
        }
        if any_attached {
            let ports = &self.ports;
            self.attachments.retain(|a| ports.contains_key(&a.port));
        }
        if let Some(parent) = comp.parent {
            if let Some(p) = self.components.get_mut(&parent) {
                p.children.retain(|c| *c != id);
            }
        }
        Ok(())
    }

    /// Looks up a component by id.
    pub fn component(&self, id: ComponentId) -> Result<&Component, ModelError> {
        self.components
            .get(&id)
            .ok_or(ModelError::UnknownComponent(id))
    }

    /// Mutable access to a component.
    pub fn component_mut(&mut self, id: ComponentId) -> Result<&mut Component, ModelError> {
        self.components
            .get_mut(&id)
            .ok_or(ModelError::UnknownComponent(id))
    }

    fn check_component(&self, id: ComponentId) -> Result<(), ModelError> {
        self.component(id).map(|_| ())
    }

    /// Finds a component by name.
    pub fn component_by_name(&self, name: &str) -> Option<ComponentId> {
        self.component_by_key(Key::new(name))
    }

    /// Finds a component by pre-interned name key (the hot-path variant: no
    /// interner access, one pointer-hash lookup).
    pub fn component_by_key(&self, key: Key) -> Option<ComponentId> {
        self.component_names.get(&key).copied()
    }

    /// Iterates over all components in id order.
    pub fn components(&self) -> impl Iterator<Item = (ComponentId, &Component)> {
        self.components.iter().map(|(id, c)| (*id, c))
    }

    /// Components whose type matches `ctype`.
    pub fn components_of_type<'a>(
        &'a self,
        ctype: &'a str,
    ) -> impl Iterator<Item = (ComponentId, &'a Component)> + 'a {
        self.components().filter(move |(_, c)| c.ctype == ctype)
    }

    /// The children (representation members) of a component.
    pub fn children_of(&self, id: ComponentId) -> Result<Vec<ComponentId>, ModelError> {
        Ok(self.component(id)?.children.clone())
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    // ---- connectors ------------------------------------------------------

    /// Adds a connector of the given type.
    pub fn add_connector(
        &mut self,
        name: impl Into<String>,
        ctype: impl Into<String>,
    ) -> Result<ConnectorId, ModelError> {
        let name = name.into();
        let key = Key::new(&name);
        if self.connector_names.contains_key(&key) {
            return Err(ModelError::DuplicateName(name));
        }
        let id = ConnectorId(self.fresh_id());
        self.journal.structural = true;
        self.connector_names.insert(key, id);
        self.connectors.insert(
            id,
            Connector {
                name,
                ctype: ctype.into(),
                properties: PropertyMap::new(),
                roles: Vec::new(),
            },
        );
        Ok(id)
    }

    /// Removes a connector, its roles, and their attachments.
    pub fn remove_connector(&mut self, id: ConnectorId) -> Result<(), ModelError> {
        let conn = self
            .connectors
            .remove(&id)
            .ok_or(ModelError::UnknownConnector(id))?;
        self.journal.structural = true;
        self.connector_names.remove(&Key::new(&conn.name));
        let mut any_attached = false;
        for role in conn.roles {
            any_attached |= self.unindex_role_attachments(role);
            if let Some(removed) = self.roles.remove(&role) {
                self.unindex_role(role, &removed.name);
                // The whole connector is going: every one of its roles is
                // being unindexed, so no promotion within the connector.
                self.connector_role_names
                    .remove(&(id, Key::new(&removed.name)));
            }
        }
        if any_attached {
            let roles = &self.roles;
            self.attachments.retain(|a| roles.contains_key(&a.role));
        }
        Ok(())
    }

    /// Looks up a connector by id.
    pub fn connector(&self, id: ConnectorId) -> Result<&Connector, ModelError> {
        self.connectors
            .get(&id)
            .ok_or(ModelError::UnknownConnector(id))
    }

    /// Mutable access to a connector.
    pub fn connector_mut(&mut self, id: ConnectorId) -> Result<&mut Connector, ModelError> {
        self.connectors
            .get_mut(&id)
            .ok_or(ModelError::UnknownConnector(id))
    }

    /// Finds a connector by name.
    pub fn connector_by_name(&self, name: &str) -> Option<ConnectorId> {
        self.connector_names.get(&Key::new(name)).copied()
    }

    /// Iterates over all connectors in id order.
    pub fn connectors(&self) -> impl Iterator<Item = (ConnectorId, &Connector)> {
        self.connectors.iter().map(|(id, c)| (*id, c))
    }

    /// Number of connectors.
    pub fn connector_count(&self) -> usize {
        self.connectors.len()
    }

    // ---- ports and roles -------------------------------------------------

    /// Adds a port to a component.
    pub fn add_port(
        &mut self,
        owner: ComponentId,
        name: impl Into<String>,
        ptype: impl Into<String>,
    ) -> Result<PortId, ModelError> {
        self.check_component(owner)?;
        let id = PortId(self.fresh_id());
        self.journal.structural = true;
        self.ports.insert(
            id,
            Port {
                name: name.into(),
                ptype: ptype.into(),
                properties: PropertyMap::new(),
                owner,
            },
        );
        self.components
            .get_mut(&owner)
            .expect("checked above")
            .ports
            .push(id);
        Ok(id)
    }

    /// Removes a port and any attachment it participates in.
    pub fn remove_port(&mut self, id: PortId) -> Result<(), ModelError> {
        let port = self.ports.remove(&id).ok_or(ModelError::UnknownPort(id))?;
        self.journal.structural = true;
        if let Some(owner) = self.components.get_mut(&port.owner) {
            owner.ports.retain(|p| *p != id);
        }
        if self.unindex_port_attachments(id) {
            self.attachments.retain(|a| a.port != id);
        }
        Ok(())
    }

    /// Adds a role to a connector.
    pub fn add_role(
        &mut self,
        owner: ConnectorId,
        name: impl Into<String>,
        rtype: impl Into<String>,
    ) -> Result<RoleId, ModelError> {
        self.connector(owner)?;
        let name = name.into();
        let key = Key::new(&name);
        let id = RoleId(self.fresh_id());
        self.journal.structural = true;
        // First-wins: lookups return the lowest-id role with a given name,
        // as the pre-index linear scan did. Ids are monotonically assigned,
        // so an existing entry always has the lower id.
        let global = self.role_names.entry(key).or_insert((id, 0));
        global.1 += 1;
        // Same within the connector: the entry stays on the earliest entry
        // of `Connector::roles`, which is the first one added.
        let local = self
            .connector_role_names
            .entry((owner, key))
            .or_insert((id, 0));
        local.1 += 1;
        self.roles.insert(
            id,
            Role {
                name,
                rtype: rtype.into(),
                properties: PropertyMap::new(),
                owner,
            },
        );
        self.connectors
            .get_mut(&owner)
            .expect("checked above")
            .roles
            .push(id);
        Ok(id)
    }

    /// Drops a removed role from the global name index, promoting the next
    /// lowest-id role with the same name if one exists. The duplicate count
    /// makes the common unique-name case O(1): the promotion scan only runs
    /// when other roles genuinely carry the same name.
    fn unindex_role(&mut self, id: RoleId, name: &str) {
        let key = Key::new(name);
        let Some(entry) = self.role_names.get_mut(&key) else {
            return;
        };
        entry.1 -= 1;
        if entry.1 == 0 {
            self.role_names.remove(&key);
        } else if entry.0 == id {
            if let Some((next, _)) = self.roles.iter().find(|(_, r)| r.name == name) {
                entry.0 = *next;
            }
        }
    }

    /// Drops a removed role from its connector's name index, promoting the
    /// next role (in `Connector::roles` order) with the same name.
    fn unindex_connector_role(&mut self, id: RoleId, owner: ConnectorId, name: &str) {
        let key = Key::new(name);
        let Some(entry) = self.connector_role_names.get_mut(&(owner, key)) else {
            return;
        };
        entry.1 -= 1;
        let (first, remaining) = *entry;
        if remaining == 0 {
            self.connector_role_names.remove(&(owner, key));
        } else if first == id {
            if let Some(conn) = self.connectors.get(&owner) {
                if let Some(next) = conn
                    .roles
                    .iter()
                    .find(|r| self.roles.get(r).is_some_and(|role| role.name == name))
                {
                    self.connector_role_names
                        .insert((owner, key), (*next, remaining));
                }
            }
        }
    }

    /// Drops every attachment of `role` from the adjacency indices (not the
    /// canonical list). Returns true if the role had any attachment — the
    /// caller uses that to skip the O(attachments) canonical-list sweep for
    /// the common remove-after-detach case.
    fn unindex_role_attachments(&mut self, role: RoleId) -> bool {
        let Some(ports) = self.attachments_by_role.remove(&role) else {
            return false;
        };
        for port in &ports {
            if let Some(v) = self.attachments_by_port.get_mut(port) {
                v.retain(|r| *r != role);
                if v.is_empty() {
                    self.attachments_by_port.remove(port);
                }
            }
        }
        !ports.is_empty()
    }

    /// Drops every attachment of `port` from the adjacency indices (not the
    /// canonical list). Returns true if the port had any attachment.
    fn unindex_port_attachments(&mut self, port: PortId) -> bool {
        let Some(roles) = self.attachments_by_port.remove(&port) else {
            return false;
        };
        for role in &roles {
            if let Some(v) = self.attachments_by_role.get_mut(role) {
                v.retain(|p| *p != port);
                if v.is_empty() {
                    self.attachments_by_role.remove(role);
                }
            }
        }
        !roles.is_empty()
    }

    /// Removes a role and any attachment it participates in.
    pub fn remove_role(&mut self, id: RoleId) -> Result<(), ModelError> {
        let role = self.roles.remove(&id).ok_or(ModelError::UnknownRole(id))?;
        self.journal.structural = true;
        self.unindex_role(id, &role.name);
        if let Some(owner) = self.connectors.get_mut(&role.owner) {
            owner.roles.retain(|r| *r != id);
        }
        self.unindex_connector_role(id, role.owner, &role.name);
        if self.unindex_role_attachments(id) {
            self.attachments.retain(|a| a.role != id);
        }
        Ok(())
    }

    /// Finds the first (lowest-id) role with the given name.
    pub fn role_by_name(&self, name: &str) -> Option<RoleId> {
        self.role_by_key(Key::new(name))
    }

    /// [`role_by_name`](Self::role_by_name) with a pre-interned key (the
    /// hot-path variant used by the model updater).
    pub fn role_by_key(&self, key: Key) -> Option<RoleId> {
        self.role_names.get(&key).map(|(id, _)| *id)
    }

    /// The first role (in `Connector::roles` order) of the given connector
    /// carrying `name` — the resolver behind name-addressed change ops. O(1).
    pub fn role_in_connector(&self, connector: ConnectorId, name: &str) -> Option<RoleId> {
        self.connector_role_names
            .get(&(connector, Key::new(name)))
            .map(|(id, _)| *id)
    }

    /// Looks up a port by id.
    pub fn port(&self, id: PortId) -> Result<&Port, ModelError> {
        self.ports.get(&id).ok_or(ModelError::UnknownPort(id))
    }

    /// Mutable access to a port.
    pub fn port_mut(&mut self, id: PortId) -> Result<&mut Port, ModelError> {
        self.ports.get_mut(&id).ok_or(ModelError::UnknownPort(id))
    }

    /// Looks up a role by id.
    pub fn role(&self, id: RoleId) -> Result<&Role, ModelError> {
        self.roles.get(&id).ok_or(ModelError::UnknownRole(id))
    }

    /// Mutable access to a role.
    pub fn role_mut(&mut self, id: RoleId) -> Result<&mut Role, ModelError> {
        self.roles.get_mut(&id).ok_or(ModelError::UnknownRole(id))
    }

    /// Iterates over all roles in id order.
    pub fn roles(&self) -> impl Iterator<Item = (RoleId, &Role)> {
        self.roles.iter().map(|(id, r)| (*id, r))
    }

    /// Iterates over all ports in id order.
    pub fn ports(&self) -> impl Iterator<Item = (PortId, &Port)> {
        self.ports.iter().map(|(id, p)| (*id, p))
    }

    // ---- attachments -----------------------------------------------------

    /// Attaches a component's port to a connector's role.
    pub fn attach(&mut self, port: PortId, role: RoleId) -> Result<(), ModelError> {
        self.port(port)?;
        self.role(role)?;
        if self
            .attachments_by_port
            .get(&port)
            .is_some_and(|v| v.contains(&role))
        {
            return Err(ModelError::AlreadyAttached(port, role));
        }
        self.journal.structural = true;
        self.attachments.push(Attachment { port, role });
        self.attachments_by_port.entry(port).or_default().push(role);
        self.attachments_by_role.entry(role).or_default().push(port);
        Ok(())
    }

    /// Removes an attachment.
    pub fn detach(&mut self, port: PortId, role: RoleId) -> Result<(), ModelError> {
        let exists = self
            .attachments_by_port
            .get(&port)
            .is_some_and(|v| v.contains(&role));
        if !exists {
            return Err(ModelError::NotAttached(port, role));
        }
        self.journal.structural = true;
        self.attachments
            .retain(|a| !(a.port == port && a.role == role));
        if let Some(v) = self.attachments_by_port.get_mut(&port) {
            v.retain(|r| *r != role);
            if v.is_empty() {
                self.attachments_by_port.remove(&port);
            }
        }
        if let Some(v) = self.attachments_by_role.get_mut(&role) {
            v.retain(|p| *p != port);
            if v.is_empty() {
                self.attachments_by_role.remove(&role);
            }
        }
        Ok(())
    }

    /// All attachments.
    pub fn attachments(&self) -> &[Attachment] {
        &self.attachments
    }

    /// True if the given port and role are attached.
    pub fn attached(&self, port: PortId, role: RoleId) -> bool {
        self.attachments_by_port
            .get(&port)
            .is_some_and(|v| v.contains(&role))
    }

    /// The roles attached to the given port, in attachment order.
    pub fn roles_attached_to_port(&self, port: PortId) -> &[RoleId] {
        self.attachments_by_port
            .get(&port)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The component attached to the given role, if any (the first
    /// attachment in attachment order, matching the historic scan).
    pub fn component_attached_to_role(&self, role: RoleId) -> Option<ComponentId> {
        self.attachments_by_role
            .get(&role)
            .and_then(|ports| ports.first())
            .and_then(|p| self.ports.get(p))
            .map(|p| p.owner)
    }

    /// The roles attached to ports owned by the given component, in
    /// per-port attachment order (ports in declaration order). Components in
    /// this workspace attach through a single port, so this matches the
    /// historic global attachment-order scan.
    pub fn roles_of_component(&self, id: ComponentId) -> Vec<RoleId> {
        let Ok(comp) = self.component(id) else {
            return Vec::new();
        };
        comp.ports
            .iter()
            .flat_map(|p| self.roles_attached_to_port(*p))
            .copied()
            .collect()
    }

    /// The connectors that the given component is attached to.
    pub fn connectors_of_component(&self, id: ComponentId) -> Vec<ConnectorId> {
        let mut out: Vec<ConnectorId> = self
            .roles_of_component(id)
            .into_iter()
            .filter_map(|r| self.roles.get(&r).map(|role| role.owner))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Components attached (through any role) to the given connector.
    pub fn components_attached_to_connector(&self, id: ConnectorId) -> Vec<ComponentId> {
        let Ok(conn) = self.connector(id) else {
            return Vec::new();
        };
        let mut out: Vec<ComponentId> = conn
            .roles
            .iter()
            .filter_map(|r| self.attachments_by_role.get(r))
            .flatten()
            .filter_map(|p| self.ports.get(p).map(|port| port.owner))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// True if two components share at least one connector.
    pub fn connected(&self, a: ComponentId, b: ComponentId) -> bool {
        let conns_a = self.connectors_of_component(a);
        let conns_b = self.connectors_of_component(b);
        conns_a.iter().any(|c| conns_b.contains(c))
    }

    // ---- property helpers ------------------------------------------------
    //
    // These setters are the journaled model-update path: they record a dirty
    // entry for every write (see [`ChangeJournal`]). The raw `*_mut`
    // accessors above bypass the journal and are intended for model
    // construction, before any incremental consumer attaches.

    /// Sets a property on any element, journaling the write.
    pub fn set_property(
        &mut self,
        element: ElementRef,
        name: &str,
        value: Value,
    ) -> Result<(), ModelError> {
        let key = Key::new(name);
        match element {
            ElementRef::Component(id) => self.component_mut(id)?.properties.set(key, value),
            ElementRef::Connector(id) => self.connector_mut(id)?.properties.set(key, value),
            ElementRef::Port(id) => self.port_mut(id)?.properties.set(key, value),
            ElementRef::Role(id) => self.role_mut(id)?.properties.set(key, value),
        }
        self.journal.dirty.insert((element, key));
        Ok(())
    }

    /// Sets a system-level property, journaling the write. Direct writes to
    /// the public `properties` map bypass the journal (safe only during
    /// model construction).
    pub fn set_system_property(&mut self, name: impl Into<Key>, value: impl Into<Value>) {
        let key = name.into();
        self.properties.set(key, value);
        self.journal.dirty_system.insert(key);
    }

    /// Compare-and-set on a component property: when the stored value is
    /// strictly equal to `value` the write is suppressed — the model is not
    /// touched and no dirty entry is recorded. Returns whether the model was
    /// written. This is the gauge no-op suppression path: at fleet scale
    /// most per-class representatives sit in steady state, and their
    /// readings repeat the stored value exactly.
    pub fn update_component_property(
        &mut self,
        id: ComponentId,
        key: Key,
        value: Value,
    ) -> Result<bool, ModelError> {
        let comp = self
            .components
            .get_mut(&id)
            .ok_or(ModelError::UnknownComponent(id))?;
        if comp.properties.get(key.as_str()) == Some(&value) {
            return Ok(false);
        }
        comp.properties.set(key, value);
        self.journal.dirty.insert((ElementRef::Component(id), key));
        Ok(true)
    }

    /// Compare-and-set on a role property; see
    /// [`update_component_property`](Self::update_component_property).
    pub fn update_role_property(
        &mut self,
        id: RoleId,
        key: Key,
        value: Value,
    ) -> Result<bool, ModelError> {
        let role = self.roles.get_mut(&id).ok_or(ModelError::UnknownRole(id))?;
        if role.properties.get(key.as_str()) == Some(&value) {
            return Ok(false);
        }
        role.properties.set(key, value);
        self.journal.dirty.insert((ElementRef::Role(id), key));
        Ok(true)
    }

    /// Gets a property from any element.
    pub fn get_property(&self, element: ElementRef, name: &str) -> Option<&Value> {
        match element {
            ElementRef::Component(id) => self.component(id).ok()?.properties.get(name),
            ElementRef::Connector(id) => self.connector(id).ok()?.properties.get(name),
            ElementRef::Port(id) => self.port(id).ok()?.properties.get(name),
            ElementRef::Role(id) => self.role(id).ok()?.properties.get(name),
        }
    }

    /// The display name of any element.
    pub fn element_name(&self, element: ElementRef) -> String {
        match element {
            ElementRef::Component(id) => self
                .component(id)
                .map(|c| c.name.clone())
                .unwrap_or_else(|_| element.to_string()),
            ElementRef::Connector(id) => self
                .connector(id)
                .map(|c| c.name.clone())
                .unwrap_or_else(|_| element.to_string()),
            ElementRef::Port(id) => self
                .port(id)
                .map(|p| p.name.clone())
                .unwrap_or_else(|_| element.to_string()),
            ElementRef::Role(id) => self
                .role(id)
                .map(|r| r.name.clone())
                .unwrap_or_else(|_| element.to_string()),
        }
    }

    /// Checks referential integrity of the whole graph (every port/role owner
    /// exists, every attachment references live elements, parent/child links
    /// are symmetric). Returns a list of human-readable problems.
    pub fn integrity_errors(&self) -> Vec<String> {
        let mut errors = Vec::new();
        for (id, port) in &self.ports {
            if !self.components.contains_key(&port.owner) {
                errors.push(format!("port #{} owned by missing component", id.0));
            }
        }
        for (id, role) in &self.roles {
            if !self.connectors.contains_key(&role.owner) {
                errors.push(format!("role #{} owned by missing connector", id.0));
            }
        }
        for att in &self.attachments {
            if !self.ports.contains_key(&att.port) {
                errors.push(format!(
                    "attachment references missing port #{}",
                    att.port.0
                ));
            }
            if !self.roles.contains_key(&att.role) {
                errors.push(format!(
                    "attachment references missing role #{}",
                    att.role.0
                ));
            }
        }
        for (id, comp) in &self.components {
            for child in &comp.children {
                match self.components.get(child) {
                    None => errors.push(format!(
                        "component {} lists missing child #{}",
                        comp.name, child.0
                    )),
                    Some(c) if c.parent != Some(*id) => errors.push(format!(
                        "component {} child {} does not point back to parent",
                        comp.name, c.name
                    )),
                    _ => {}
                }
            }
            if let Some(parent) = comp.parent {
                if !self.components.contains_key(&parent) {
                    errors.push(format!("component {} has missing parent", comp.name));
                }
            }
        }
        errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client_server_system() -> (System, ComponentId, ComponentId, ConnectorId) {
        let mut sys = System::new("demo");
        let client = sys.add_component("User1", "ClientT").unwrap();
        let group = sys.add_component("ServerGrp1", "ServerGroupT").unwrap();
        let conn = sys.add_connector("Conn1", "ServiceConnT").unwrap();
        let cport = sys.add_port(client, "request", "RequestT").unwrap();
        let gport = sys.add_port(group, "serve", "ServeT").unwrap();
        let crole = sys.add_role(conn, "clientSide", "ClientRoleT").unwrap();
        let grole = sys.add_role(conn, "serverSide", "ServerRoleT").unwrap();
        sys.attach(cport, crole).unwrap();
        sys.attach(gport, grole).unwrap();
        (sys, client, group, conn)
    }

    #[test]
    fn build_and_query_graph() {
        let (sys, client, group, conn) = client_server_system();
        assert!(sys.connected(client, group));
        assert_eq!(sys.connectors_of_component(client), vec![conn]);
        let attached = sys.components_attached_to_connector(conn);
        assert!(attached.contains(&client) && attached.contains(&group));
        assert_eq!(sys.component_count(), 2);
        assert_eq!(sys.connector_count(), 1);
        assert!(sys.integrity_errors().is_empty());
    }

    #[test]
    fn duplicate_component_names_rejected() {
        let mut sys = System::new("demo");
        sys.add_component("X", "ClientT").unwrap();
        assert!(matches!(
            sys.add_component("X", "ClientT"),
            Err(ModelError::DuplicateName(_))
        ));
    }

    #[test]
    fn children_track_representation_members() {
        let mut sys = System::new("demo");
        let group = sys.add_component("ServerGrp1", "ServerGroupT").unwrap();
        let s1 = sys
            .add_child_component(group, "Server1", "ServerT")
            .unwrap();
        let s2 = sys
            .add_child_component(group, "Server2", "ServerT")
            .unwrap();
        assert_eq!(sys.children_of(group).unwrap(), vec![s1, s2]);
        assert_eq!(sys.component(s1).unwrap().parent, Some(group));
        // Removing a child updates the parent's list.
        sys.remove_component(s1).unwrap();
        assert_eq!(sys.children_of(group).unwrap(), vec![s2]);
        assert!(sys.integrity_errors().is_empty());
    }

    #[test]
    fn removing_parent_removes_children() {
        let mut sys = System::new("demo");
        let group = sys.add_component("ServerGrp1", "ServerGroupT").unwrap();
        let s1 = sys
            .add_child_component(group, "Server1", "ServerT")
            .unwrap();
        sys.remove_component(group).unwrap();
        assert!(sys.component(s1).is_err());
        assert_eq!(sys.component_count(), 0);
    }

    #[test]
    fn removing_component_cleans_attachments() {
        let (mut sys, client, _group, conn) = client_server_system();
        sys.remove_component(client).unwrap();
        // The connector still exists but no attachment references the client.
        assert_eq!(sys.components_attached_to_connector(conn).len(), 1);
        assert!(sys.integrity_errors().is_empty());
    }

    #[test]
    fn removing_connector_cleans_roles_and_attachments() {
        let (mut sys, client, group, conn) = client_server_system();
        sys.remove_connector(conn).unwrap();
        assert!(!sys.connected(client, group));
        assert!(sys.integrity_errors().is_empty());
        assert_eq!(sys.attachments().len(), 0);
    }

    #[test]
    fn detach_then_attach_elsewhere() {
        let (mut sys, client, _group, conn) = client_server_system();
        let port = sys.component(client).unwrap().ports[0];
        let role = sys.roles_of_component(client)[0];
        sys.detach(port, role).unwrap();
        assert!(!sys.attached(port, role));
        // A second detach fails.
        assert!(matches!(
            sys.detach(port, role),
            Err(ModelError::NotAttached(_, _))
        ));
        // Attach to a new connector.
        let conn2 = sys.add_connector("Conn2", "ServiceConnT").unwrap();
        let role2 = sys.add_role(conn2, "clientSide", "ClientRoleT").unwrap();
        sys.attach(port, role2).unwrap();
        assert_eq!(sys.connectors_of_component(client), vec![conn2]);
        assert_ne!(conn, conn2);
    }

    #[test]
    fn double_attach_rejected() {
        let (mut sys, client, ..) = client_server_system();
        let port = sys.component(client).unwrap().ports[0];
        let role = sys.roles_of_component(client)[0];
        assert!(matches!(
            sys.attach(port, role),
            Err(ModelError::AlreadyAttached(_, _))
        ));
    }

    #[test]
    fn properties_on_all_element_kinds() {
        let (mut sys, client, _group, conn) = client_server_system();
        let port = sys.component(client).unwrap().ports[0];
        let role = sys.connector(conn).unwrap().roles[0];
        sys.set_property(
            ElementRef::Component(client),
            "averageLatency",
            Value::Float(1.2),
        )
        .unwrap();
        sys.set_property(ElementRef::Connector(conn), "delay", Value::Float(0.1))
            .unwrap();
        sys.set_property(ElementRef::Port(port), "protocol", Value::Str("rmi".into()))
            .unwrap();
        sys.set_property(ElementRef::Role(role), "bandwidth", Value::Float(5e6))
            .unwrap();
        assert_eq!(
            sys.get_property(ElementRef::Component(client), "averageLatency"),
            Some(&Value::Float(1.2))
        );
        assert_eq!(
            sys.get_property(ElementRef::Role(role), "bandwidth"),
            Some(&Value::Float(5e6))
        );
        assert_eq!(
            sys.get_property(ElementRef::Component(client), "missing"),
            None
        );
    }

    #[test]
    fn components_of_type_filters() {
        let (sys, ..) = client_server_system();
        assert_eq!(sys.components_of_type("ClientT").count(), 1);
        assert_eq!(sys.components_of_type("ServerGroupT").count(), 1);
        assert_eq!(sys.components_of_type("ServerT").count(), 0);
    }

    #[test]
    fn lookup_by_name() {
        let (sys, client, ..) = client_server_system();
        assert_eq!(sys.component_by_name("User1"), Some(client));
        assert_eq!(sys.component_by_name("nope"), None);
        assert!(sys.connector_by_name("Conn1").is_some());
        assert_eq!(sys.element_name(ElementRef::Component(client)), "User1");
    }

    #[test]
    fn component_attached_to_role_resolves_owner() {
        let (sys, client, ..) = client_server_system();
        let role = sys.roles_of_component(client)[0];
        assert_eq!(sys.component_attached_to_role(role), Some(client));
    }

    #[test]
    fn journal_records_property_writes_and_drains() {
        let (mut sys, client, ..) = client_server_system();
        // Construction left structural changes pending; drain them first.
        assert!(sys.has_structural_changes());
        let construction = sys.drain_changes();
        assert!(construction.structural);
        assert!(!sys.has_structural_changes());

        let element = ElementRef::Component(client);
        sys.set_property(element, "averageLatency", Value::Float(1.5))
            .unwrap();
        sys.set_system_property("maxLatency", 2.0);
        assert_eq!(sys.pending_changes(), 2);
        let epoch_before = sys.journal_epoch();
        let delta = sys.drain_changes();
        assert_eq!(delta.epoch, epoch_before);
        assert!(!delta.structural);
        assert!(delta.dirty.contains(&(element, Key::new("averageLatency"))));
        assert!(delta.dirty_system.contains(&Key::new("maxLatency")));
        // Draining clears the journal and bumps the epoch.
        assert_eq!(sys.pending_changes(), 0);
        assert!(sys.drain_changes().is_empty());
        assert!(sys.journal_epoch() > epoch_before);
    }

    #[test]
    fn structural_ops_mark_the_journal_structural() {
        let (mut sys, client, ..) = client_server_system();
        sys.drain_changes();
        sys.remove_component(client).unwrap();
        assert!(sys.has_structural_changes());
        assert!(sys.drain_changes().structural);
        assert!(!sys.has_structural_changes());
    }

    #[test]
    fn compare_and_set_suppresses_equal_writes() {
        let (mut sys, client, ..) = client_server_system();
        sys.drain_changes();
        let key = Key::new("load");
        assert!(sys
            .update_component_property(client, key, Value::Float(3.0))
            .unwrap());
        assert_eq!(sys.pending_changes(), 1);
        sys.drain_changes();
        // Re-writing the stored value is suppressed: no write, no dirt.
        assert!(!sys
            .update_component_property(client, key, Value::Float(3.0))
            .unwrap());
        assert_eq!(sys.pending_changes(), 0);
        // Strict equality: an Int 3 is not a Float 3.0.
        assert!(sys
            .update_component_property(client, key, Value::Int(3))
            .unwrap());
        assert_eq!(sys.pending_changes(), 1);
    }
}
