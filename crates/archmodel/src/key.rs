//! Interned names for properties and elements.
//!
//! The model layer sits on the adaptation loop's hot path: every control
//! tick applies thousands of gauge readings, each addressed by a property
//! name and an element name. With plain `String`s that meant a clone plus a
//! full string hash/compare per reading per tick. A [`Key`] interns the name
//! once in a global table and is afterwards a `Copy` handle: equality is a
//! pointer comparison, hashing hashes the pointer, and no allocation happens
//! after the first intern of a given name.
//!
//! Ordering still compares the underlying strings (with a pointer fast
//! path), so collections keyed by `Key` iterate in exactly the same name
//! order as their `String`-keyed predecessors — constraint evaluation and
//! model diffing remain deterministic and bit-identical.
//!
//! Interned strings are leaked intentionally: the set of distinct property
//! and element names in a process is small and stable (a few per element),
//! so the table is effectively an append-only arena.

use serde::{Content, Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, OnceLock};

/// An interned, copyable name. Obtain one with [`Key::new`] or via
/// `From<&str>` / `From<String>`; two keys made from equal strings are
/// always the same pointer.
#[derive(Clone, Copy)]
pub struct Key(&'static str);

fn interner() -> &'static Mutex<HashSet<&'static str>> {
    static INTERNER: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(HashSet::new()))
}

impl Key {
    /// Interns `name` (a no-op after the first time) and returns its key.
    pub fn new(name: &str) -> Key {
        let mut table = interner().lock().expect("interner lock");
        if let Some(&existing) = table.get(name) {
            return Key(existing);
        }
        let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
        table.insert(leaked);
        Key(leaked)
    }

    /// The interned string.
    pub fn as_str(&self) -> &'static str {
        self.0
    }
}

impl From<&str> for Key {
    fn from(name: &str) -> Key {
        Key::new(name)
    }
}

impl From<&String> for Key {
    fn from(name: &String) -> Key {
        Key::new(name)
    }
}

impl From<String> for Key {
    fn from(name: String) -> Key {
        Key::new(&name)
    }
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        // The interner guarantees one allocation per distinct string, so
        // pointer identity is string equality.
        std::ptr::eq(self.0.as_ptr(), other.0.as_ptr()) && self.0.len() == other.0.len()
    }
}
impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self == other {
            std::cmp::Ordering::Equal
        } else {
            self.0.cmp(other.0)
        }
    }
}

impl PartialEq<str> for Key {
    fn eq(&self, other: &str) -> bool {
        self.0 == other
    }
}

impl PartialEq<&str> for Key {
    fn eq(&self, other: &&str) -> bool {
        self.0 == *other
    }
}

impl PartialEq<String> for Key {
    fn eq(&self, other: &String) -> bool {
        self.0 == other.as_str()
    }
}

impl Hash for Key {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Pointer identity is string identity, so hashing the address is
        // consistent with `Eq` and far cheaper than hashing the bytes.
        (self.0.as_ptr() as usize).hash(state);
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.0, f)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl Serialize for Key {
    fn to_content(&self) -> Content {
        Content::Str(self.0.to_string())
    }
}

impl Deserialize for Key {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let a = Key::new("averageLatency");
        let b = Key::from("averageLatency".to_string());
        assert_eq!(a, b);
        assert_eq!(a.as_str().as_ptr(), b.as_str().as_ptr());
        assert_ne!(a, Key::new("load"));
    }

    #[test]
    fn ordering_matches_string_order() {
        let mut keys = [Key::new("b"), Key::new("a"), Key::new("c"), Key::new("a")];
        keys.sort();
        let names: Vec<&str> = keys.iter().map(Key::as_str).collect();
        assert_eq!(names, vec!["a", "a", "b", "c"]);
    }

    #[test]
    fn hashing_is_usable_in_maps() {
        let mut map = std::collections::HashMap::new();
        map.insert(Key::new("x"), 1);
        map.insert(Key::new("y"), 2);
        assert_eq!(map.get(&Key::new("x")), Some(&1));
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn display_and_serialize_show_the_name() {
        let k = Key::new("bandwidth");
        assert_eq!(k.to_string(), "bandwidth");
        assert_eq!(
            serde::Serialize::to_content(&k),
            Content::Str("bandwidth".to_string())
        );
    }
}
