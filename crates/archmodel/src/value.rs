//! Property values.
//!
//! Architectural elements are annotated with a *property list* (§2 of the
//! paper): performance attributes such as `averageLatency`, `bandwidth`, or
//! `load`, plus configuration values such as `replicationCount`. Properties
//! are dynamically typed so the same model machinery serves any architectural
//! style.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dynamically typed property value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Integer value (e.g. replication count, queue length).
    Int(i64),
    /// Floating point value (e.g. latency in seconds, bandwidth in bps).
    Float(f64),
    /// Boolean flag (e.g. `isActive`).
    Bool(bool),
    /// String value (e.g. a host name).
    Str(String),
    /// A set of values (e.g. the set of overloaded server groups).
    Set(Vec<Value>),
}

impl Value {
    /// The value as a float, coercing integers. `None` for other variants.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as an integer. `None` unless it is an `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a boolean. `None` unless it is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice. `None` unless it is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice of set members. `None` unless it is a `Set`.
    pub fn as_set(&self) -> Option<&[Value]> {
        match self {
            Value::Set(v) => Some(v),
            _ => None,
        }
    }

    /// True when the value is numeric (int or float).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    /// Numeric comparison that coerces ints and floats; `None` when either
    /// value is non-numeric and the variants differ.
    pub fn compare(&self, other: &Value) -> Option<std::cmp::Ordering> {
        match (self, other) {
            (a, b) if a.is_numeric() && b.is_numeric() => {
                a.as_f64().unwrap().partial_cmp(&b.as_f64().unwrap())
            }
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Structural equality with int/float coercion.
    pub fn loosely_equals(&self, other: &Value) -> bool {
        match (self, other) {
            (a, b) if a.is_numeric() && b.is_numeric() => {
                (a.as_f64().unwrap() - b.as_f64().unwrap()).abs() < f64::EPSILON
            }
            (a, b) => a == b,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Set(items) => {
                write!(f, "{{")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn numeric_coercion_in_comparison() {
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(3.0).compare(&Value::Int(3)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn incomparable_values_return_none() {
        assert_eq!(Value::Bool(true).compare(&Value::Int(1)), None);
        assert_eq!(Value::Str("a".into()).compare(&Value::Float(1.0)), None);
    }

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Int(5).as_f64(), Some(5.0));
        assert_eq!(Value::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Int(5).as_bool(), None);
        assert!(Value::Set(vec![Value::Int(1)]).as_set().is_some());
    }

    #[test]
    fn loose_equality_coerces_numbers() {
        assert!(Value::Int(3).loosely_equals(&Value::Float(3.0)));
        assert!(!Value::Int(3).loosely_equals(&Value::Float(3.1)));
        assert!(Value::Str("a".into()).loosely_equals(&Value::Str("a".into())));
    }

    #[test]
    fn display_formats_sets() {
        let v = Value::Set(vec![Value::Int(1), Value::Str("x".into())]);
        assert_eq!(v.to_string(), "{1, \"x\"}");
    }

    #[test]
    fn conversions_from_rust_types() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
    }
}
