//! Invariants and constraint checking.
//!
//! The task layer expresses performance requirements as threshold constraints
//! over the architectural model (e.g. `averageLatency <= maxLatency`). The
//! architecture manager checks these constraints whenever gauge updates change
//! model properties; a violated constraint triggers the associated repair
//! strategy (§3.2).

use crate::element::ElementRef;
use crate::expr::{eval_bool, parse, Bindings, EvalError, EvalValue, Expr, ParseError};
use crate::system::System;
use serde::{Deserialize, Serialize};

/// What an invariant ranges over.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstraintScope {
    /// Evaluated once against the whole system (no `self` binding).
    System,
    /// Evaluated once per component of the given type, with `self` bound to
    /// that component.
    EachComponent(String),
    /// Evaluated once per connector of the given type, with `self` bound.
    EachConnector(String),
    /// Evaluated once per role of the given type, with `self` bound.
    EachRole(String),
}

/// A named invariant over the architectural model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Invariant {
    /// Short identifier, e.g. `"latency"`.
    pub name: String,
    /// The elements the invariant ranges over.
    pub scope: ConstraintScope,
    /// The parsed constraint expression.
    pub expression: Expr,
    /// The original constraint text (for reporting).
    pub source: String,
}

impl Invariant {
    /// Parses an invariant from its textual form.
    pub fn parse(
        name: impl Into<String>,
        scope: ConstraintScope,
        text: &str,
    ) -> Result<Self, ParseError> {
        Ok(Invariant {
            name: name.into(),
            scope,
            expression: parse(text)?,
            source: text.to_string(),
        })
    }
}

/// A detected constraint violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Name of the violated invariant.
    pub invariant: String,
    /// The element the violation concerns (`None` for system-scope
    /// invariants).
    pub subject: Option<ElementRef>,
    /// Human-readable name of the subject.
    pub subject_name: String,
    /// The constraint text that failed.
    pub detail: String,
}

/// Result of checking a constraint set against the model.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CheckReport {
    /// Constraints that evaluated to false.
    pub violations: Vec<Violation>,
    /// Constraints that could not be evaluated (e.g. a gauge has not yet
    /// reported the property). These are *not* treated as violations.
    pub errors: Vec<String>,
    /// How many (invariant, element) pairs were evaluated.
    pub evaluated: usize,
}

impl CheckReport {
    /// True when no constraint was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A collection of invariants checked together.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConstraintSet {
    invariants: Vec<Invariant>,
}

impl ConstraintSet {
    /// Creates an empty constraint set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an invariant.
    pub fn add(&mut self, invariant: Invariant) {
        self.invariants.push(invariant);
    }

    /// Builder-style addition.
    pub fn with(mut self, invariant: Invariant) -> Self {
        self.add(invariant);
        self
    }

    /// The invariants in this set.
    pub fn invariants(&self) -> &[Invariant] {
        &self.invariants
    }

    /// Number of invariants.
    pub fn len(&self) -> usize {
        self.invariants.len()
    }

    /// True if the set has no invariants.
    pub fn is_empty(&self) -> bool {
        self.invariants.is_empty()
    }

    /// Checks every invariant against the system.
    pub fn check(&self, system: &System) -> CheckReport {
        let mut report = CheckReport::default();
        for invariant in &self.invariants {
            self.check_one(invariant, system, &mut report);
        }
        report
    }

    /// Checks a single invariant by name; returns `None` if no invariant has
    /// that name.
    pub fn check_named(&self, name: &str, system: &System) -> Option<CheckReport> {
        let invariant = self.invariants.iter().find(|i| i.name == name)?;
        let mut report = CheckReport::default();
        self.check_one(invariant, system, &mut report);
        Some(report)
    }

    fn check_one(&self, invariant: &Invariant, system: &System, report: &mut CheckReport) {
        let subjects: Vec<(Option<ElementRef>, String)> = match &invariant.scope {
            ConstraintScope::System => vec![(None, system.name.clone())],
            ConstraintScope::EachComponent(ctype) => system
                .components_of_type(ctype)
                .map(|(id, c)| (Some(ElementRef::Component(id)), c.name.clone()))
                .collect(),
            ConstraintScope::EachConnector(ctype) => system
                .connectors()
                .filter(|(_, c)| &c.ctype == ctype)
                .map(|(id, c)| (Some(ElementRef::Connector(id)), c.name.clone()))
                .collect(),
            ConstraintScope::EachRole(rtype) => system
                .roles()
                .filter(|(_, r)| &r.rtype == rtype)
                .map(|(id, r)| (Some(ElementRef::Role(id)), r.name.clone()))
                .collect(),
        };

        for (subject, subject_name) in subjects {
            let mut bindings = Bindings::new();
            if let Some(el) = subject {
                bindings.insert("self".to_string(), EvalValue::Element(el));
            }
            report.evaluated += 1;
            match eval_bool(&invariant.expression, system, &bindings) {
                Ok(true) => {}
                Ok(false) => report.violations.push(Violation {
                    invariant: invariant.name.clone(),
                    subject,
                    subject_name: subject_name.clone(),
                    detail: invariant.source.clone(),
                }),
                Err(EvalError::MissingProperty(el, prop)) => {
                    report.errors.push(format!(
                        "invariant {}: property {prop} not yet observed on {el}",
                        invariant.name
                    ));
                }
                Err(e) => report
                    .errors
                    .push(format!("invariant {}: {e}", invariant.name)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system_with_clients() -> System {
        let mut sys = System::new("storage");
        sys.properties.set("maxLatency", 2.0);
        sys.properties.set("maxServerLoad", 6i64);
        for i in 1..=3 {
            let c = sys.add_component(format!("User{i}"), "ClientT").unwrap();
            sys.component_mut(c)
                .unwrap()
                .properties
                .set("averageLatency", 0.5 * i as f64);
        }
        let g = sys.add_component("ServerGrp1", "ServerGroupT").unwrap();
        sys.component_mut(g).unwrap().properties.set("load", 2i64);
        sys
    }

    fn latency_invariant() -> Invariant {
        Invariant::parse(
            "latency",
            ConstraintScope::EachComponent("ClientT".into()),
            "self.averageLatency <= maxLatency",
        )
        .unwrap()
    }

    #[test]
    fn clean_system_has_no_violations() {
        let sys = system_with_clients();
        let set = ConstraintSet::new().with(latency_invariant());
        let report = set.check(&sys);
        assert!(report.is_clean());
        assert_eq!(report.evaluated, 3);
        assert!(report.errors.is_empty());
    }

    #[test]
    fn violation_identifies_the_offending_client() {
        let mut sys = system_with_clients();
        let c3 = sys.component_by_name("User3").unwrap();
        sys.component_mut(c3)
            .unwrap()
            .properties
            .set("averageLatency", 4.2);
        let set = ConstraintSet::new().with(latency_invariant());
        let report = set.check(&sys);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].subject_name, "User3");
        assert_eq!(report.violations[0].invariant, "latency");
    }

    #[test]
    fn system_scope_invariant() {
        let sys = system_with_clients();
        let inv = Invariant::parse(
            "has-groups",
            ConstraintScope::System,
            "size(select g : ServerGroupT in components | g.load >= 0) >= 1",
        )
        .unwrap();
        let report = ConstraintSet::new().with(inv).check(&sys);
        assert!(report.is_clean());
        assert_eq!(report.evaluated, 1);
    }

    #[test]
    fn missing_property_reported_as_error_not_violation() {
        let mut sys = system_with_clients();
        let extra = sys.add_component("User9", "ClientT").unwrap();
        // No averageLatency property yet (gauge has not reported).
        let _ = extra;
        let set = ConstraintSet::new().with(latency_invariant());
        let report = set.check(&sys);
        assert!(report.violations.is_empty());
        assert_eq!(report.errors.len(), 1);
        assert!(report.errors[0].contains("averageLatency"));
    }

    #[test]
    fn check_named_runs_only_that_invariant() {
        let sys = system_with_clients();
        let set = ConstraintSet::new().with(latency_invariant()).with(
            Invariant::parse(
                "load",
                ConstraintScope::EachComponent("ServerGroupT".into()),
                "self.load <= maxServerLoad",
            )
            .unwrap(),
        );
        assert_eq!(set.len(), 2);
        let report = set.check_named("load", &sys).unwrap();
        assert_eq!(report.evaluated, 1);
        assert!(set.check_named("nope", &sys).is_none());
    }

    #[test]
    fn role_scope_invariant() {
        let mut sys = system_with_clients();
        let conn = sys.add_connector("Conn1", "ServiceConnT").unwrap();
        let role = sys.add_role(conn, "clientSide", "ClientRoleT").unwrap();
        sys.role_mut(role)
            .unwrap()
            .properties
            .set("bandwidth", 4_000.0);
        sys.properties.set("minBandwidth", 10_000.0);
        let inv = Invariant::parse(
            "bandwidth",
            ConstraintScope::EachRole("ClientRoleT".into()),
            "self.bandwidth >= minBandwidth",
        )
        .unwrap();
        let report = ConstraintSet::new().with(inv).check(&sys);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].subject_name, "clientSide");
    }

    #[test]
    fn parse_error_surfaces() {
        assert!(Invariant::parse("bad", ConstraintScope::System, "a ==").is_err());
    }
}
