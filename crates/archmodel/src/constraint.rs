//! Invariants and constraint checking.
//!
//! The task layer expresses performance requirements as threshold constraints
//! over the architectural model (e.g. `averageLatency <= maxLatency`). The
//! architecture manager checks these constraints whenever gauge updates change
//! model properties; a violated constraint triggers the associated repair
//! strategy (§3.2).

use crate::element::ElementRef;
use crate::expr::{
    eval_bool, parse, Bindings, EvalError, EvalValue, Expr, ParseError, PropertyReadSet,
};
use crate::key::Key;
use crate::system::{ModelDelta, System};
use serde::{Deserialize, Serialize};

/// What an invariant ranges over.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstraintScope {
    /// Evaluated once against the whole system (no `self` binding).
    System,
    /// Evaluated once per component of the given type, with `self` bound to
    /// that component.
    EachComponent(String),
    /// Evaluated once per connector of the given type, with `self` bound.
    EachConnector(String),
    /// Evaluated once per role of the given type, with `self` bound.
    EachRole(String),
}

/// A named invariant over the architectural model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Invariant {
    /// Short identifier, e.g. `"latency"`.
    pub name: String,
    /// The elements the invariant ranges over.
    pub scope: ConstraintScope,
    /// The parsed constraint expression.
    pub expression: Expr,
    /// The original constraint text (for reporting).
    pub source: String,
}

impl Invariant {
    /// Parses an invariant from its textual form.
    pub fn parse(
        name: impl Into<String>,
        scope: ConstraintScope,
        text: &str,
    ) -> Result<Self, ParseError> {
        Ok(Invariant {
            name: name.into(),
            scope,
            expression: parse(text)?,
            source: text.to_string(),
        })
    }
}

/// A detected constraint violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Name of the violated invariant.
    pub invariant: String,
    /// The element the violation concerns (`None` for system-scope
    /// invariants).
    pub subject: Option<ElementRef>,
    /// Human-readable name of the subject.
    pub subject_name: String,
    /// The constraint text that failed.
    pub detail: String,
}

/// Result of checking a constraint set against the model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckReport {
    /// Constraints that evaluated to false.
    pub violations: Vec<Violation>,
    /// Constraints that could not be evaluated (e.g. a gauge has not yet
    /// reported the property). These are *not* treated as violations.
    pub errors: Vec<String>,
    /// How many (invariant, element) pairs were actually evaluated.
    pub evaluated: usize,
    /// How many (invariant, element) pairs were pruned by the dirty set and
    /// replayed from cache instead of re-evaluated. Always zero for a full
    /// sweep; `evaluated + skipped` equals the full sweep's `evaluated`.
    pub skipped: usize,
}

impl Serialize for CheckReport {
    // Hand-written so `skipped` is emitted only when non-zero: full-sweep
    // reports keep their historic serialized shape byte for byte.
    fn to_content(&self) -> serde::Content {
        let mut fields = vec![
            ("violations".to_string(), self.violations.to_content()),
            ("errors".to_string(), self.errors.to_content()),
            ("evaluated".to_string(), self.evaluated.to_content()),
        ];
        if self.skipped != 0 {
            fields.push(("skipped".to_string(), self.skipped.to_content()));
        }
        serde::Content::Map(fields)
    }
}

impl Deserialize for CheckReport {}

impl CheckReport {
    /// True when no constraint was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A collection of invariants checked together.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConstraintSet {
    invariants: Vec<Invariant>,
}

impl ConstraintSet {
    /// Creates an empty constraint set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an invariant.
    pub fn add(&mut self, invariant: Invariant) {
        self.invariants.push(invariant);
    }

    /// Builder-style addition.
    pub fn with(mut self, invariant: Invariant) -> Self {
        self.add(invariant);
        self
    }

    /// The invariants in this set.
    pub fn invariants(&self) -> &[Invariant] {
        &self.invariants
    }

    /// Number of invariants.
    pub fn len(&self) -> usize {
        self.invariants.len()
    }

    /// True if the set has no invariants.
    pub fn is_empty(&self) -> bool {
        self.invariants.is_empty()
    }

    /// Checks every invariant against the system.
    pub fn check(&self, system: &System) -> CheckReport {
        let mut report = CheckReport::default();
        for invariant in &self.invariants {
            self.check_one(invariant, system, &mut report);
        }
        report
    }

    /// Checks a single invariant by name; returns `None` if no invariant has
    /// that name.
    pub fn check_named(&self, name: &str, system: &System) -> Option<CheckReport> {
        let invariant = self.invariants.iter().find(|i| i.name == name)?;
        let mut report = CheckReport::default();
        self.check_one(invariant, system, &mut report);
        Some(report)
    }

    fn check_one(&self, invariant: &Invariant, system: &System, report: &mut CheckReport) {
        for (subject, subject_name) in subjects_of(invariant, system) {
            report.evaluated += 1;
            let outcome = evaluate_pair(invariant, system, subject, &subject_name);
            outcome.append_to(report);
        }
    }
}

/// The subjects an invariant ranges over, in the order a full sweep visits
/// them (system, then elements in id order).
fn subjects_of(invariant: &Invariant, system: &System) -> Vec<(Option<ElementRef>, String)> {
    match &invariant.scope {
        ConstraintScope::System => vec![(None, system.name.clone())],
        ConstraintScope::EachComponent(ctype) => system
            .components_of_type(ctype)
            .map(|(id, c)| (Some(ElementRef::Component(id)), c.name.clone()))
            .collect(),
        ConstraintScope::EachConnector(ctype) => system
            .connectors()
            .filter(|(_, c)| &c.ctype == ctype)
            .map(|(id, c)| (Some(ElementRef::Connector(id)), c.name.clone()))
            .collect(),
        ConstraintScope::EachRole(rtype) => system
            .roles()
            .filter(|(_, r)| &r.rtype == rtype)
            .map(|(id, r)| (Some(ElementRef::Role(id)), r.name.clone()))
            .collect(),
    }
}

/// The cached outcome of evaluating one (invariant, subject) pair. The
/// incremental checker replays these for pairs the dirty set did not touch,
/// reproducing the full sweep's report byte for byte — a persisting
/// violation (or a still-missing gauge property) is re-emitted on every
/// check, exactly as a full sweep re-detects it.
#[derive(Debug, Clone, PartialEq)]
enum PairOutcome {
    /// The constraint held.
    Holds,
    /// The constraint evaluated to false.
    Violated(Violation),
    /// Evaluation failed; the formatted report line is cached verbatim.
    Error(String),
}

impl PairOutcome {
    fn append_to(&self, report: &mut CheckReport) {
        match self {
            PairOutcome::Holds => {}
            PairOutcome::Violated(v) => report.violations.push(v.clone()),
            PairOutcome::Error(e) => report.errors.push(e.clone()),
        }
    }
}

/// Evaluates one (invariant, subject) pair — the single source of truth for
/// both the full sweep and the incremental checker.
fn evaluate_pair(
    invariant: &Invariant,
    system: &System,
    subject: Option<ElementRef>,
    subject_name: &str,
) -> PairOutcome {
    let mut bindings = Bindings::new();
    if let Some(el) = subject {
        bindings.insert("self".to_string(), EvalValue::Element(el));
    }
    match eval_bool(&invariant.expression, system, &bindings) {
        Ok(true) => PairOutcome::Holds,
        Ok(false) => PairOutcome::Violated(Violation {
            invariant: invariant.name.clone(),
            subject,
            subject_name: subject_name.to_string(),
            detail: invariant.source.clone(),
        }),
        Err(EvalError::MissingProperty(el, prop)) => PairOutcome::Error(format!(
            "invariant {}: property {prop} not yet observed on {el}",
            invariant.name
        )),
        Err(e) => PairOutcome::Error(format!("invariant {}: {e}", invariant.name)),
    }
}

/// One cached (invariant, subject) pair.
#[derive(Debug, Clone)]
struct PairState {
    subject: Option<ElementRef>,
    subject_name: String,
    outcome: PairOutcome,
}

/// Cached per-invariant state: the read-set (computed once per rebuild) and
/// the subject list with each pair's last outcome, in sweep order.
#[derive(Debug, Clone)]
struct InvariantState {
    reads: PropertyReadSet,
    /// `reads.self_props` interned for O(1) dirty-set intersection.
    self_keys: Vec<Key>,
    /// `reads.idents` interned for dirty-system-property intersection.
    ident_keys: Vec<Key>,
    pairs: Vec<PairState>,
}

/// Delta-driven constraint checker.
///
/// Drains the system's change journal on each check and re-evaluates only
/// the (invariant, element) pairs whose read-set intersects the dirty set;
/// every other pair replays its cached outcome in the original sweep order,
/// so the produced [`CheckReport`] — violations, errors, and their order —
/// is byte-identical to `ConstraintSet::check` on the same model. Structural
/// model changes (or a constraint-set change) conservatively invalidate the
/// cache and trigger a full re-scan.
///
/// Soundness rests on every model mutation between checks going through the
/// journaled paths (`System::set_property` and friends, the change-op
/// machinery); raw `component_mut`-style access bypasses the journal and is
/// reserved for model construction.
#[derive(Debug, Clone, Default)]
pub struct IncrementalChecker {
    invariants: Vec<InvariantState>,
    primed: bool,
}

impl IncrementalChecker {
    /// Creates a checker with an empty cache; the first check is a full
    /// sweep.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks `constraints` against `system`, draining its change journal.
    ///
    /// Equivalent to `constraints.check(system)` except that untouched pairs
    /// are counted in `skipped` rather than `evaluated`.
    pub fn check(&mut self, constraints: &ConstraintSet, system: &mut System) -> CheckReport {
        let delta = system.drain_changes();
        if !self.primed || delta.structural || self.invariants.len() != constraints.len() {
            return self.rebuild(constraints, system);
        }
        self.replay(constraints, system, &delta)
    }

    /// Full sweep that (re)builds the cached subject lists and outcomes.
    fn rebuild(&mut self, constraints: &ConstraintSet, system: &System) -> CheckReport {
        self.invariants.clear();
        let mut report = CheckReport::default();
        for invariant in constraints.invariants() {
            let reads = invariant.expression.referenced_properties();
            let self_keys = reads.self_props.iter().map(|p| Key::new(p)).collect();
            let ident_keys = reads.idents.iter().map(|p| Key::new(p)).collect();
            let mut pairs = Vec::new();
            for (subject, subject_name) in subjects_of(invariant, system) {
                report.evaluated += 1;
                let outcome = evaluate_pair(invariant, system, subject, &subject_name);
                outcome.append_to(&mut report);
                pairs.push(PairState {
                    subject,
                    subject_name,
                    outcome,
                });
            }
            self.invariants.push(InvariantState {
                reads,
                self_keys,
                ident_keys,
                pairs,
            });
        }
        self.primed = true;
        report
    }

    /// Delta check: re-evaluate dirty pairs, replay the rest from cache.
    fn replay(
        &mut self,
        constraints: &ConstraintSet,
        system: &System,
        delta: &ModelDelta,
    ) -> CheckReport {
        let mut report = CheckReport::default();
        for (invariant, state) in constraints.invariants().iter().zip(&mut self.invariants) {
            // An opaque read-set can observe anything, so any change at all
            // re-evaluates the whole invariant; a dirty system property in
            // the ident set likewise affects every pair (thresholds such as
            // `maxLatency` are compared by each subject).
            let eval_all = (state.reads.opaque && !delta.is_empty())
                || state
                    .ident_keys
                    .iter()
                    .any(|k| delta.dirty_system.contains(k));
            for pair in &mut state.pairs {
                let dirty = eval_all
                    || match pair.subject {
                        Some(el) => state
                            .self_keys
                            .iter()
                            .any(|k| delta.dirty.contains(&(el, *k))),
                        None => false,
                    };
                if dirty {
                    report.evaluated += 1;
                    pair.outcome =
                        evaluate_pair(invariant, system, pair.subject, &pair.subject_name);
                } else {
                    report.skipped += 1;
                }
                pair.outcome.append_to(&mut report);
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system_with_clients() -> System {
        let mut sys = System::new("storage");
        sys.properties.set("maxLatency", 2.0);
        sys.properties.set("maxServerLoad", 6i64);
        for i in 1..=3 {
            let c = sys.add_component(format!("User{i}"), "ClientT").unwrap();
            sys.component_mut(c)
                .unwrap()
                .properties
                .set("averageLatency", 0.5 * i as f64);
        }
        let g = sys.add_component("ServerGrp1", "ServerGroupT").unwrap();
        sys.component_mut(g).unwrap().properties.set("load", 2i64);
        sys
    }

    fn latency_invariant() -> Invariant {
        Invariant::parse(
            "latency",
            ConstraintScope::EachComponent("ClientT".into()),
            "self.averageLatency <= maxLatency",
        )
        .unwrap()
    }

    #[test]
    fn clean_system_has_no_violations() {
        let sys = system_with_clients();
        let set = ConstraintSet::new().with(latency_invariant());
        let report = set.check(&sys);
        assert!(report.is_clean());
        assert_eq!(report.evaluated, 3);
        assert!(report.errors.is_empty());
    }

    #[test]
    fn violation_identifies_the_offending_client() {
        let mut sys = system_with_clients();
        let c3 = sys.component_by_name("User3").unwrap();
        sys.component_mut(c3)
            .unwrap()
            .properties
            .set("averageLatency", 4.2);
        let set = ConstraintSet::new().with(latency_invariant());
        let report = set.check(&sys);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].subject_name, "User3");
        assert_eq!(report.violations[0].invariant, "latency");
    }

    #[test]
    fn system_scope_invariant() {
        let sys = system_with_clients();
        let inv = Invariant::parse(
            "has-groups",
            ConstraintScope::System,
            "size(select g : ServerGroupT in components | g.load >= 0) >= 1",
        )
        .unwrap();
        let report = ConstraintSet::new().with(inv).check(&sys);
        assert!(report.is_clean());
        assert_eq!(report.evaluated, 1);
    }

    #[test]
    fn missing_property_reported_as_error_not_violation() {
        let mut sys = system_with_clients();
        let extra = sys.add_component("User9", "ClientT").unwrap();
        // No averageLatency property yet (gauge has not reported).
        let _ = extra;
        let set = ConstraintSet::new().with(latency_invariant());
        let report = set.check(&sys);
        assert!(report.violations.is_empty());
        assert_eq!(report.errors.len(), 1);
        assert!(report.errors[0].contains("averageLatency"));
    }

    #[test]
    fn check_named_runs_only_that_invariant() {
        let sys = system_with_clients();
        let set = ConstraintSet::new().with(latency_invariant()).with(
            Invariant::parse(
                "load",
                ConstraintScope::EachComponent("ServerGroupT".into()),
                "self.load <= maxServerLoad",
            )
            .unwrap(),
        );
        assert_eq!(set.len(), 2);
        let report = set.check_named("load", &sys).unwrap();
        assert_eq!(report.evaluated, 1);
        assert!(set.check_named("nope", &sys).is_none());
    }

    #[test]
    fn role_scope_invariant() {
        let mut sys = system_with_clients();
        let conn = sys.add_connector("Conn1", "ServiceConnT").unwrap();
        let role = sys.add_role(conn, "clientSide", "ClientRoleT").unwrap();
        sys.role_mut(role)
            .unwrap()
            .properties
            .set("bandwidth", 4_000.0);
        sys.properties.set("minBandwidth", 10_000.0);
        let inv = Invariant::parse(
            "bandwidth",
            ConstraintScope::EachRole("ClientRoleT".into()),
            "self.bandwidth >= minBandwidth",
        )
        .unwrap();
        let report = ConstraintSet::new().with(inv).check(&sys);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].subject_name, "clientSide");
    }

    #[test]
    fn parse_error_surfaces() {
        assert!(Invariant::parse("bad", ConstraintScope::System, "a ==").is_err());
    }

    #[test]
    fn incremental_check_skips_clean_pairs_and_matches_full_sweep() {
        let mut sys = system_with_clients();
        let set = ConstraintSet::new().with(latency_invariant());
        let mut checker = IncrementalChecker::new();

        // First check primes the cache with a full sweep.
        let first = checker.check(&set, &mut sys);
        assert_eq!(first.evaluated, 3);
        assert_eq!(first.skipped, 0);
        assert_eq!(
            CheckReport {
                skipped: 0,
                ..first.clone()
            },
            set.check(&sys)
        );

        // Nothing changed: everything replays from cache.
        let steady = checker.check(&set, &mut sys);
        assert_eq!(steady.evaluated, 0);
        assert_eq!(steady.skipped, 3);
        assert_eq!(steady.violations, first.violations);
        assert_eq!(steady.errors, first.errors);

        // One client's latency changes: only its pair re-evaluates, and the
        // report still matches a full sweep exactly.
        let c3 = sys.component_by_name("User3").unwrap();
        sys.set_property(
            ElementRef::Component(c3),
            "averageLatency",
            crate::Value::Float(4.2),
        )
        .unwrap();
        let incremental = checker.check(&set, &mut sys);
        assert_eq!(incremental.evaluated, 1);
        assert_eq!(incremental.skipped, 2);
        let full = set.check(&sys);
        assert_eq!(incremental.violations, full.violations);
        assert_eq!(incremental.errors, full.errors);
        assert_eq!(incremental.evaluated + incremental.skipped, full.evaluated);
        assert_eq!(incremental.violations[0].subject_name, "User3");
    }

    #[test]
    fn incremental_check_replays_persisting_violations_and_errors() {
        let mut sys = system_with_clients();
        let c3 = sys.component_by_name("User3").unwrap();
        sys.set_property(
            ElementRef::Component(c3),
            "averageLatency",
            crate::Value::Float(9.9),
        )
        .unwrap();
        // User9 has no averageLatency at all: a persisting eval error.
        sys.add_component("User9", "ClientT").unwrap();
        let set = ConstraintSet::new().with(latency_invariant());
        let mut checker = IncrementalChecker::new();
        let first = checker.check(&set, &mut sys);
        assert_eq!(first.violations.len(), 1);
        assert_eq!(first.errors.len(), 1);
        // Steady state: the violation and the error are replayed from cache
        // in their original order, byte for byte.
        let steady = checker.check(&set, &mut sys);
        assert_eq!(steady.evaluated, 0);
        assert_eq!(steady.violations, first.violations);
        assert_eq!(steady.errors, first.errors);
    }

    #[test]
    fn structural_change_rebuilds_the_cache() {
        let mut sys = system_with_clients();
        let set = ConstraintSet::new().with(latency_invariant());
        let mut checker = IncrementalChecker::new();
        checker.check(&set, &mut sys);
        let c4 = sys.add_component("User4", "ClientT").unwrap();
        sys.component_mut(c4)
            .unwrap()
            .properties
            .set("averageLatency", 0.1);
        let report = checker.check(&set, &mut sys);
        // The structural change forces a full re-scan over the new subjects.
        assert_eq!(report.evaluated, 4);
        assert_eq!(report.skipped, 0);
        assert_eq!(
            CheckReport {
                skipped: 0,
                ..report
            },
            set.check(&sys)
        );
    }

    #[test]
    fn dirty_system_property_reevaluates_the_whole_invariant() {
        let mut sys = system_with_clients();
        let set = ConstraintSet::new().with(latency_invariant());
        let mut checker = IncrementalChecker::new();
        assert!(checker.check(&set, &mut sys).is_clean());
        // Tightening the system-level threshold must re-evaluate every pair
        // even though no per-client property changed.
        sys.set_system_property("maxLatency", 1.0);
        let report = checker.check(&set, &mut sys);
        assert_eq!(report.evaluated, 3);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].subject_name, "User3");
    }

    #[test]
    fn opaque_invariants_reevaluate_on_any_change() {
        let mut sys = system_with_clients();
        let inv = Invariant::parse(
            "has-groups",
            ConstraintScope::System,
            "size(select g : ServerGroupT in components | g.load >= 0) >= 1",
        )
        .unwrap();
        let set = ConstraintSet::new().with(inv);
        let mut checker = IncrementalChecker::new();
        assert_eq!(checker.check(&set, &mut sys).evaluated, 1);
        // No change: even an opaque invariant replays from cache.
        assert_eq!(checker.check(&set, &mut sys).skipped, 1);
        // Any dirty entry re-evaluates it: the read-set is unknowable.
        let g = sys.component_by_name("ServerGrp1").unwrap();
        sys.set_property(ElementRef::Component(g), "load", crate::Value::Int(5))
            .unwrap();
        let report = checker.check(&set, &mut sys);
        assert_eq!(report.evaluated, 1);
        assert_eq!(report.skipped, 0);
    }

    #[test]
    fn check_report_serialises_skipped_only_when_nonzero() {
        let clean = CheckReport {
            evaluated: 3,
            ..CheckReport::default()
        };
        let serde::Content::Map(fields) = clean.to_content() else {
            panic!("expected a map");
        };
        assert!(fields.iter().all(|(k, _)| k != "skipped"));
        let pruned = CheckReport {
            evaluated: 1,
            skipped: 2,
            ..CheckReport::default()
        };
        let serde::Content::Map(fields) = pruned.to_content() else {
            panic!("expected a map");
        };
        assert!(fields.iter().any(|(k, _)| k == "skipped"));
    }
}
