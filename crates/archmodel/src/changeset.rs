//! Transactional model changes.
//!
//! Repair scripts do not mutate the architectural model directly: they build a
//! [`Transaction`] of [`ModelOp`]s against a working copy, the style checker
//! validates the result, and only then is the change committed to the live
//! model and propagated to the running system. This mirrors the paper's
//! `commit repair` / `abort` semantics (Figure 5) and its requirement that
//! operators keep the architecture *structurally valid*.

use crate::element::{ComponentId, PortId, RoleId};
use crate::system::{ModelError, System};
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// A single, name-addressed change to the architectural model.
///
/// Operations address elements by name so a recorded change-set can be
/// re-applied to another copy of the model (and logged in a human-readable
/// form).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelOp {
    /// Adds a component (optionally inside another component's
    /// representation).
    AddComponent {
        /// Name of the new component.
        name: String,
        /// Its type in the style.
        ctype: String,
        /// Optional parent component name.
        parent: Option<String>,
    },
    /// Removes a component (and its ports, attachments, children).
    RemoveComponent {
        /// Name of the component to remove.
        name: String,
    },
    /// Adds a connector.
    AddConnector {
        /// Name of the new connector.
        name: String,
        /// Its type in the style.
        ctype: String,
    },
    /// Removes a connector (and its roles and attachments).
    RemoveConnector {
        /// Name of the connector to remove.
        name: String,
    },
    /// Adds a port to a component.
    AddPort {
        /// Owning component name.
        component: String,
        /// Port name (unique within the component).
        port: String,
        /// Port type.
        ptype: String,
    },
    /// Adds a role to a connector.
    AddRole {
        /// Owning connector name.
        connector: String,
        /// Role name (unique within the connector).
        role: String,
        /// Role type.
        rtype: String,
    },
    /// Removes a role from a connector (and any attachment it participates
    /// in) — used when a client is moved away from a connector.
    RemoveRole {
        /// Owning connector name.
        connector: String,
        /// Role name.
        role: String,
    },
    /// Removes a port from a component (and any attachment it participates
    /// in).
    RemovePort {
        /// Owning component name.
        component: String,
        /// Port name.
        port: String,
    },
    /// Attaches a component's port to a connector's role.
    Attach {
        /// Component name.
        component: String,
        /// Port name on the component.
        port: String,
        /// Connector name.
        connector: String,
        /// Role name on the connector.
        role: String,
    },
    /// Detaches a component's port from a connector's role.
    Detach {
        /// Component name.
        component: String,
        /// Port name on the component.
        port: String,
        /// Connector name.
        connector: String,
        /// Role name on the connector.
        role: String,
    },
    /// Moves a whole client class onto a target server group's connector in
    /// one operation. For every client (in list order): its stale role — and
    /// the attachment through it — is deleted, and a fresh `{client}.role`
    /// is created on and attached to `{to_group}.Conn` (the connector is
    /// created with its server-side attachment if missing). The bulk
    /// equivalent of the per-client Detach/RemoveRole/AddRole/Attach
    /// sequence: recorded change-sets — and their commit replay — stay
    /// proportional to classes, not class members.
    MoveClientGroup {
        /// Client component names, in class order. Members missing from the
        /// model are skipped (a symmetric class can outlive individual
        /// members).
        clients: Vec<String>,
        /// Target server group name.
        to_group: String,
    },
    /// Sets a property on a component.
    SetComponentProperty {
        /// Component name.
        component: String,
        /// Property name.
        property: String,
        /// New value.
        value: Value,
    },
    /// Sets a property on a connector.
    SetConnectorProperty {
        /// Connector name.
        connector: String,
        /// Property name.
        property: String,
        /// New value.
        value: Value,
    },
    /// Sets a property on a role.
    SetRoleProperty {
        /// Owning connector name.
        connector: String,
        /// Role name.
        role: String,
        /// Property name.
        property: String,
        /// New value.
        value: Value,
    },
    /// Sets a system-level property.
    SetSystemProperty {
        /// Property name.
        property: String,
        /// New value.
        value: Value,
    },
}

/// Errors raised while applying change operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ChangeError {
    /// The named element does not exist.
    NotFound(String),
    /// The underlying model rejected the operation.
    Model(ModelError),
}

impl From<ModelError> for ChangeError {
    fn from(e: ModelError) -> Self {
        ChangeError::Model(e)
    }
}

impl std::fmt::Display for ChangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChangeError::NotFound(n) => write!(f, "element not found: {n}"),
            ChangeError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for ChangeError {}

fn find_component(system: &System, name: &str) -> Result<ComponentId, ChangeError> {
    system
        .component_by_name(name)
        .ok_or_else(|| ChangeError::NotFound(format!("component {name}")))
}

fn find_port(system: &System, component: &str, port: &str) -> Result<PortId, ChangeError> {
    let cid = find_component(system, component)?;
    let comp = system.component(cid)?;
    comp.ports
        .iter()
        .copied()
        .find(|p| system.port(*p).map(|p| p.name == port).unwrap_or(false))
        .ok_or_else(|| ChangeError::NotFound(format!("port {component}.{port}")))
}

fn find_role(system: &System, connector: &str, role: &str) -> Result<RoleId, ChangeError> {
    let cid = system
        .connector_by_name(connector)
        .ok_or_else(|| ChangeError::NotFound(format!("connector {connector}")))?;
    // O(1) via the per-connector name index — a bulk repair resolves a role
    // on the shared service connector for every one of thousands of moved
    // clients, and a `Connector::roles` scan here turns that quadratic.
    system
        .role_in_connector(cid, role)
        .ok_or_else(|| ChangeError::NotFound(format!("role {connector}.{role}")))
}

/// The body of [`ModelOp::MoveClientGroup`]: per-client mutations in list
/// order, so the final model state (and element-id allocation) matches the
/// equivalent per-client operation sequence exactly.
fn move_client_group_op(
    system: &mut System,
    clients: &[String],
    to_group: &str,
) -> Result<(), ChangeError> {
    use crate::style::{
        ClientServerStyle, CLIENT_ROLE_T, SERVER_GROUP_T, SERVER_ROLE_T, SERVICE_CONN_T,
    };
    let group_id = find_component(system, to_group)?;
    if system.component(group_id)?.ctype != SERVER_GROUP_T {
        return Err(ChangeError::NotFound(format!("server group {to_group}")));
    }
    // Ensure the target connector exists, with its server-side attachment.
    let conn_name = format!("{to_group}.Conn");
    let conn_id = match system.connector_by_name(&conn_name) {
        Some(id) => id,
        None => {
            let conn_id = system.add_connector(conn_name.clone(), SERVICE_CONN_T.to_string())?;
            let role_id =
                system.add_role(conn_id, "serverSide".to_string(), SERVER_ROLE_T.to_string())?;
            let group_port = find_port(system, to_group, ClientServerStyle::GROUP_PORT)?;
            system.attach(group_port, role_id)?;
            conn_id
        }
    };
    for client in clients {
        if system.component_by_name(client).is_none() {
            continue;
        }
        let port_id = find_port(system, client, ClientServerStyle::CLIENT_PORT)?;
        // Removing the stale role also removes the attachment through it.
        if let Some(old_role) = system.roles_attached_to_port(port_id).first().copied() {
            system.remove_role(old_role)?;
        }
        let role_id =
            system.add_role(conn_id, format!("{client}.role"), CLIENT_ROLE_T.to_string())?;
        system.attach(port_id, role_id)?;
    }
    Ok(())
}

/// Applies a single operation to a system.
pub fn apply_op(system: &mut System, op: &ModelOp) -> Result<(), ChangeError> {
    match op {
        ModelOp::AddComponent {
            name,
            ctype,
            parent,
        } => {
            match parent {
                Some(parent_name) => {
                    let parent_id = find_component(system, parent_name)?;
                    system.add_child_component(parent_id, name.clone(), ctype.clone())?;
                }
                None => {
                    system.add_component(name.clone(), ctype.clone())?;
                }
            }
            Ok(())
        }
        ModelOp::RemoveComponent { name } => {
            let id = find_component(system, name)?;
            system.remove_component(id)?;
            Ok(())
        }
        ModelOp::AddConnector { name, ctype } => {
            system.add_connector(name.clone(), ctype.clone())?;
            Ok(())
        }
        ModelOp::RemoveConnector { name } => {
            let id = system
                .connector_by_name(name)
                .ok_or_else(|| ChangeError::NotFound(format!("connector {name}")))?;
            system.remove_connector(id)?;
            Ok(())
        }
        ModelOp::AddPort {
            component,
            port,
            ptype,
        } => {
            let cid = find_component(system, component)?;
            system.add_port(cid, port.clone(), ptype.clone())?;
            Ok(())
        }
        ModelOp::AddRole {
            connector,
            role,
            rtype,
        } => {
            let cid = system
                .connector_by_name(connector)
                .ok_or_else(|| ChangeError::NotFound(format!("connector {connector}")))?;
            system.add_role(cid, role.clone(), rtype.clone())?;
            Ok(())
        }
        ModelOp::RemoveRole { connector, role } => {
            let rid = find_role(system, connector, role)?;
            system.remove_role(rid)?;
            Ok(())
        }
        ModelOp::RemovePort { component, port } => {
            let pid = find_port(system, component, port)?;
            system.remove_port(pid)?;
            Ok(())
        }
        ModelOp::Attach {
            component,
            port,
            connector,
            role,
        } => {
            let pid = find_port(system, component, port)?;
            let rid = find_role(system, connector, role)?;
            system.attach(pid, rid)?;
            Ok(())
        }
        ModelOp::Detach {
            component,
            port,
            connector,
            role,
        } => {
            let pid = find_port(system, component, port)?;
            let rid = find_role(system, connector, role)?;
            system.detach(pid, rid)?;
            Ok(())
        }
        ModelOp::MoveClientGroup { clients, to_group } => {
            move_client_group_op(system, clients, to_group)
        }
        // Property ops go through the journaled setters so committed repairs
        // feed the incremental constraint checker's dirty set.
        ModelOp::SetComponentProperty {
            component,
            property,
            value,
        } => {
            let cid = find_component(system, component)?;
            system.set_property(
                crate::element::ElementRef::Component(cid),
                property,
                value.clone(),
            )?;
            Ok(())
        }
        ModelOp::SetConnectorProperty {
            connector,
            property,
            value,
        } => {
            let cid = system
                .connector_by_name(connector)
                .ok_or_else(|| ChangeError::NotFound(format!("connector {connector}")))?;
            system.set_property(
                crate::element::ElementRef::Connector(cid),
                property,
                value.clone(),
            )?;
            Ok(())
        }
        ModelOp::SetRoleProperty {
            connector,
            role,
            property,
            value,
        } => {
            let rid = find_role(system, connector, role)?;
            system.set_property(
                crate::element::ElementRef::Role(rid),
                property,
                value.clone(),
            )?;
            Ok(())
        }
        ModelOp::SetSystemProperty { property, value } => {
            system.set_system_property(property.as_str(), value.clone());
            Ok(())
        }
    }
}

/// A transaction of model operations built against a working copy.
#[derive(Debug, Clone)]
pub struct Transaction {
    working: System,
    ops: Vec<ModelOp>,
}

impl Transaction {
    /// Starts a transaction from a snapshot of `base`.
    pub fn new(base: &System) -> Self {
        Transaction {
            working: base.clone(),
            ops: Vec::new(),
        }
    }

    /// The working copy reflecting all operations applied so far.
    pub fn working(&self) -> &System {
        &self.working
    }

    /// Applies an operation to the working copy and records it.
    pub fn apply(&mut self, op: ModelOp) -> Result<(), ChangeError> {
        apply_op(&mut self.working, &op)?;
        self.ops.push(op);
        Ok(())
    }

    /// The operations recorded so far.
    pub fn ops(&self) -> &[ModelOp] {
        &self.ops
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no operations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Replays the recorded operations onto `target` (typically the live
    /// model the transaction was started from) and returns them for
    /// propagation to the runtime layer.
    ///
    /// If any replayed operation fails, `target` is left untouched.
    pub fn commit(self, target: &mut System) -> Result<Vec<ModelOp>, ChangeError> {
        let mut staged = target.clone();
        for op in &self.ops {
            apply_op(&mut staged, op)?;
        }
        *target = staged;
        Ok(self.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_system() -> System {
        let mut sys = System::new("storage");
        let grp = sys.add_component("ServerGrp1", "ServerGroupT").unwrap();
        sys.add_child_component(grp, "Server1", "ServerT").unwrap();
        let client = sys.add_component("User1", "ClientT").unwrap();
        let conn = sys.add_connector("Conn1", "ServiceConnT").unwrap();
        let cport = sys.add_port(client, "request", "RequestT").unwrap();
        let gport = sys.add_port(grp, "serve", "ServeT").unwrap();
        let crole = sys.add_role(conn, "clientSide", "ClientRoleT").unwrap();
        let grole = sys.add_role(conn, "serverSide", "ServerRoleT").unwrap();
        sys.attach(cport, crole).unwrap();
        sys.attach(gport, grole).unwrap();
        sys
    }

    #[test]
    fn add_server_via_transaction() {
        let mut live = base_system();
        let mut tx = Transaction::new(&live);
        tx.apply(ModelOp::AddComponent {
            name: "Server2".into(),
            ctype: "ServerT".into(),
            parent: Some("ServerGrp1".into()),
        })
        .unwrap();
        tx.apply(ModelOp::SetComponentProperty {
            component: "ServerGrp1".into(),
            property: "replicationCount".into(),
            value: Value::Int(2),
        })
        .unwrap();
        // The live model is untouched until commit.
        assert_eq!(
            live.children_of(live.component_by_name("ServerGrp1").unwrap())
                .unwrap()
                .len(),
            1
        );
        let ops = tx.commit(&mut live).unwrap();
        assert_eq!(ops.len(), 2);
        let grp = live.component_by_name("ServerGrp1").unwrap();
        assert_eq!(live.children_of(grp).unwrap().len(), 2);
        assert_eq!(
            live.component(grp)
                .unwrap()
                .properties
                .get_i64("replicationCount"),
            Some(2)
        );
    }

    #[test]
    fn move_client_between_connectors() {
        let mut live = base_system();
        // Add a second server group + connector to move to.
        live.add_component("ServerGrp2", "ServerGroupT").unwrap();
        live.add_connector("Conn2", "ServiceConnT").unwrap();
        let mut tx = Transaction::new(&live);
        tx.apply(ModelOp::AddRole {
            connector: "Conn2".into(),
            role: "clientSide".into(),
            rtype: "ClientRoleT".into(),
        })
        .unwrap();
        tx.apply(ModelOp::Detach {
            component: "User1".into(),
            port: "request".into(),
            connector: "Conn1".into(),
            role: "clientSide".into(),
        })
        .unwrap();
        tx.apply(ModelOp::Attach {
            component: "User1".into(),
            port: "request".into(),
            connector: "Conn2".into(),
            role: "clientSide".into(),
        })
        .unwrap();
        tx.commit(&mut live).unwrap();
        let user = live.component_by_name("User1").unwrap();
        let conn2 = live.connector_by_name("Conn2").unwrap();
        assert_eq!(live.connectors_of_component(user), vec![conn2]);
    }

    #[test]
    fn move_client_group_matches_per_client_sequence() {
        let mut live = base_system();
        let user2 = live.add_component("User2", "ClientT").unwrap();
        let port2 = live.add_port(user2, "request", "RequestT").unwrap();
        let conn1 = live.connector_by_name("Conn1").unwrap();
        let role2 = live.add_role(conn1, "User2.role", "ClientRoleT").unwrap();
        live.attach(port2, role2).unwrap();
        let grp2 = live.add_component("ServerGrp2", "ServerGroupT").unwrap();
        live.add_port(grp2, "serve", "ServeT").unwrap();

        // The per-client sequence the style's `move` operator records for
        // each member: ensure the target connector, drop the stale role,
        // attach a fresh one.
        let mut per_client = live.clone();
        let seq = [
            ModelOp::AddConnector {
                name: "ServerGrp2.Conn".into(),
                ctype: "ServiceConnT".into(),
            },
            ModelOp::AddRole {
                connector: "ServerGrp2.Conn".into(),
                role: "serverSide".into(),
                rtype: "ServerRoleT".into(),
            },
            ModelOp::Attach {
                component: "ServerGrp2".into(),
                port: "serve".into(),
                connector: "ServerGrp2.Conn".into(),
                role: "serverSide".into(),
            },
            ModelOp::Detach {
                component: "User1".into(),
                port: "request".into(),
                connector: "Conn1".into(),
                role: "clientSide".into(),
            },
            ModelOp::RemoveRole {
                connector: "Conn1".into(),
                role: "clientSide".into(),
            },
            ModelOp::AddRole {
                connector: "ServerGrp2.Conn".into(),
                role: "User1.role".into(),
                rtype: "ClientRoleT".into(),
            },
            ModelOp::Attach {
                component: "User1".into(),
                port: "request".into(),
                connector: "ServerGrp2.Conn".into(),
                role: "User1.role".into(),
            },
            ModelOp::Detach {
                component: "User2".into(),
                port: "request".into(),
                connector: "Conn1".into(),
                role: "User2.role".into(),
            },
            ModelOp::RemoveRole {
                connector: "Conn1".into(),
                role: "User2.role".into(),
            },
            ModelOp::AddRole {
                connector: "ServerGrp2.Conn".into(),
                role: "User2.role".into(),
                rtype: "ClientRoleT".into(),
            },
            ModelOp::Attach {
                component: "User2".into(),
                port: "request".into(),
                connector: "ServerGrp2.Conn".into(),
                role: "User2.role".into(),
            },
        ];
        for op in &seq {
            apply_op(&mut per_client, op).unwrap();
        }

        // The bulk op: one recorded operation, same final state. A member
        // missing from the model is skipped, not an error.
        let mut bulk = live.clone();
        apply_op(
            &mut bulk,
            &ModelOp::MoveClientGroup {
                clients: vec!["User1".into(), "User2".into(), "Ghost".into()],
                to_group: "ServerGrp2".into(),
            },
        )
        .unwrap();

        assert_eq!(bulk, per_client);
        assert!(bulk.integrity_errors().is_empty());
        let conn2 = bulk.connector_by_name("ServerGrp2.Conn").unwrap();
        for client in ["User1", "User2"] {
            let id = bulk.component_by_name(client).unwrap();
            assert_eq!(bulk.connectors_of_component(id), vec![conn2]);
        }
    }

    #[test]
    fn move_client_group_rejects_non_group_target() {
        let mut live = base_system();
        let err = apply_op(
            &mut live,
            &ModelOp::MoveClientGroup {
                clients: vec!["User1".into()],
                to_group: "User1".into(),
            },
        );
        assert!(matches!(err, Err(ChangeError::NotFound(_))));
    }

    #[test]
    fn failed_op_in_transaction_reports_error() {
        let live = base_system();
        let mut tx = Transaction::new(&live);
        let err = tx.apply(ModelOp::RemoveComponent {
            name: "DoesNotExist".into(),
        });
        assert!(matches!(err, Err(ChangeError::NotFound(_))));
        assert!(tx.is_empty());
    }

    #[test]
    fn commit_is_atomic_when_replay_fails() {
        let mut live = base_system();
        let mut tx = Transaction::new(&live);
        tx.apply(ModelOp::AddComponent {
            name: "Server2".into(),
            ctype: "ServerT".into(),
            parent: Some("ServerGrp1".into()),
        })
        .unwrap();
        // Invalidate the target so replay fails: remove the parent group.
        let grp = live.component_by_name("ServerGrp1").unwrap();
        live.remove_component(grp).unwrap();
        let before = live.clone();
        assert!(tx.commit(&mut live).is_err());
        assert_eq!(live, before, "failed commit must not modify the target");
    }

    #[test]
    fn remove_component_and_connector_ops() {
        let mut live = base_system();
        let mut tx = Transaction::new(&live);
        tx.apply(ModelOp::RemoveComponent {
            name: "Server1".into(),
        })
        .unwrap();
        tx.apply(ModelOp::RemoveConnector {
            name: "Conn1".into(),
        })
        .unwrap();
        tx.commit(&mut live).unwrap();
        assert!(live.component_by_name("Server1").is_none());
        assert!(live.connector_by_name("Conn1").is_none());
        assert!(live.integrity_errors().is_empty());
    }

    #[test]
    fn set_properties_on_roles_and_system() {
        let mut live = base_system();
        let mut tx = Transaction::new(&live);
        tx.apply(ModelOp::SetRoleProperty {
            connector: "Conn1".into(),
            role: "clientSide".into(),
            property: "bandwidth".into(),
            value: Value::Float(5e6),
        })
        .unwrap();
        tx.apply(ModelOp::SetSystemProperty {
            property: "maxLatency".into(),
            value: Value::Float(2.0),
        })
        .unwrap();
        tx.apply(ModelOp::SetConnectorProperty {
            connector: "Conn1".into(),
            property: "protocol".into(),
            value: Value::Str("fifo-queue".into()),
        })
        .unwrap();
        tx.commit(&mut live).unwrap();
        assert_eq!(live.properties.get_f64("maxLatency"), Some(2.0));
        let conn = live.connector_by_name("Conn1").unwrap();
        assert_eq!(
            live.connector(conn).unwrap().properties.get_str("protocol"),
            Some("fifo-queue")
        );
    }

    #[test]
    fn remove_role_and_port_ops() {
        let mut live = base_system();
        let mut tx = Transaction::new(&live);
        tx.apply(ModelOp::RemoveRole {
            connector: "Conn1".into(),
            role: "clientSide".into(),
        })
        .unwrap();
        tx.apply(ModelOp::RemovePort {
            component: "ServerGrp1".into(),
            port: "serve".into(),
        })
        .unwrap();
        tx.commit(&mut live).unwrap();
        let conn = live.connector_by_name("Conn1").unwrap();
        assert_eq!(live.connector(conn).unwrap().roles.len(), 1);
        let grp = live.component_by_name("ServerGrp1").unwrap();
        assert!(live.component(grp).unwrap().ports.is_empty());
        assert!(live.integrity_errors().is_empty());
    }

    #[test]
    fn add_port_op() {
        let mut live = base_system();
        let mut tx = Transaction::new(&live);
        tx.apply(ModelOp::AddPort {
            component: "User1".into(),
            port: "admin".into(),
            ptype: "AdminT".into(),
        })
        .unwrap();
        tx.commit(&mut live).unwrap();
        let user = live.component_by_name("User1").unwrap();
        assert_eq!(live.component(user).unwrap().ports.len(), 2);
    }
}
