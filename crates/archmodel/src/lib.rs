//! # archmodel — Acme-style software architecture models
//!
//! The *model layer* of the adaptation framework keeps an architectural model
//! of the running system: a graph of components and connectors annotated with
//! properties, plus constraints whose violation triggers repair. This crate
//! provides that model, in the spirit of the paper's AcmeLib:
//!
//! * [`system`] — the element graph (components, connectors, ports, roles,
//!   attachments, representations) with referential-integrity checking,
//! * [`property`] / [`value`] — dynamically typed property lists,
//! * [`expr`] — a small Armani-like constraint-expression language (lexer,
//!   parser, evaluator),
//! * [`constraint`] — invariants, scopes, and the constraint checker,
//! * [`changeset`] — transactional, name-addressed model operations with
//!   commit/abort semantics,
//! * [`style`] — the client/server-with-replicated-server-groups style used
//!   by the paper's evaluation, including structural validity rules.

#![warn(missing_docs)]

pub mod changeset;
pub mod constraint;
pub mod element;
pub mod expr;
pub mod key;
pub mod property;
pub mod style;
pub mod system;
pub mod value;

pub use changeset::{apply_op, ChangeError, ModelOp, Transaction};
pub use constraint::{
    CheckReport, ConstraintScope, ConstraintSet, IncrementalChecker, Invariant, Violation,
};
pub use element::{
    Attachment, Component, ComponentId, Connector, ConnectorId, ElementRef, Port, PortId, Role,
    RoleId,
};
pub use expr::{
    eval, eval_bool, parse, BinOp, Bindings, EvalError, EvalValue, Expr, PropertyReadSet,
    QuantifierKind, UnaryOp,
};
pub use key::Key;
pub use property::PropertyMap;
pub use style::{ClientServerStyle, StyleViolation};
pub use system::{ModelDelta, ModelError, System};
pub use value::Value;
