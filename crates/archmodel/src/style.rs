//! The client/server architectural style used by the paper's example.
//!
//! The evaluated system is *a storage infrastructure consisting of a set of
//! server groups that provide information to a set of users*: each server
//! group holds replicated servers and a FIFO request queue; users (clients)
//! are connected to exactly one server group through a service connector. The
//! style defines the vocabulary (component / connector / port / role types),
//! construction helpers, and structural-validity rules that adaptation
//! operators must preserve.

use crate::element::{ComponentId, ConnectorId};
use crate::system::{ModelError, System};
use serde::{Deserialize, Serialize};

/// Component type for users/clients.
pub const CLIENT_T: &str = "ClientT";
/// Component type for server groups.
pub const SERVER_GROUP_T: &str = "ServerGroupT";
/// Component type for replicated servers inside a group.
pub const SERVER_T: &str = "ServerT";
/// Connector type for the client ↔ server-group service connection (the
/// request queue plus network links).
pub const SERVICE_CONN_T: &str = "ServiceConnT";
/// Port type on clients for issuing requests.
pub const REQUEST_PORT_T: &str = "RequestT";
/// Port type on server groups for serving requests.
pub const SERVE_PORT_T: &str = "ServeT";
/// Role type on the client side of a service connector.
pub const CLIENT_ROLE_T: &str = "ClientRoleT";
/// Role type on the server-group side of a service connector.
pub const SERVER_ROLE_T: &str = "ServerRoleT";

/// Well-known property names used by the style.
pub mod props {
    /// Average request-response latency observed by a client (seconds).
    pub const AVERAGE_LATENCY: &str = "averageLatency";
    /// Server-group load, measured as pending-request queue length.
    pub const LOAD: &str = "load";
    /// Bandwidth available on a client role (bits per second).
    pub const BANDWIDTH: &str = "bandwidth";
    /// Number of replicated servers a group is configured with.
    pub const REPLICATION_COUNT: &str = "replicationCount";
    /// Whether a server is currently activated.
    pub const IS_ACTIVE: &str = "isActive";
    /// Task-layer bound on average latency (seconds).
    pub const MAX_LATENCY: &str = "maxLatency";
    /// Task-layer bound on server-group load (queue length).
    pub const MAX_SERVER_LOAD: &str = "maxServerLoad";
    /// Task-layer minimum acceptable client bandwidth (bits per second).
    pub const MIN_BANDWIDTH: &str = "minBandwidth";
    /// Number of a server group's assigned replicas currently alive.
    pub const LIVE_SERVERS: &str = "liveServers";
    /// Number of a server group's assigned replicas that have crashed and
    /// not yet been failed over.
    pub const DEAD_SERVERS: &str = "deadServers";
    /// Whether a server replica's runtime process is alive (0 or 1).
    pub const IS_ALIVE: &str = "isAlive";
    /// Whether a client can currently reach its server group (0 or 1).
    pub const REACHABLE: &str = "reachable";
    /// Task-layer bound on dead replicas tolerated per group (normally 0).
    pub const MAX_DEAD_SERVERS: &str = "maxDeadServers";
    /// Number of replicas a group was provisioned with at deployment — the
    /// floor the cost-reduction (`reduceServers`) repair never shrinks below.
    pub const BASE_REPLICAS: &str = "baseReplicas";
    /// Load at or below which a group counts as underutilised (system-level
    /// threshold of the `underutilised` invariant).
    pub const UNDERUTILISED_LOAD: &str = "underutilisedLoad";
}

/// A structural-validity problem found by [`ClientServerStyle::validate`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StyleViolation {
    /// The rule that was broken.
    pub rule: String,
    /// The offending element, by name.
    pub subject: String,
}

impl std::fmt::Display for StyleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.subject, self.rule)
    }
}

/// The client/server-with-replicated-server-groups style.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientServerStyle;

impl ClientServerStyle {
    /// The standard name of the request port created on clients.
    pub const CLIENT_PORT: &'static str = "request";
    /// The standard name of the serve port created on server groups.
    pub const GROUP_PORT: &'static str = "serve";

    /// Adds a client component with its request port.
    pub fn add_client(system: &mut System, name: &str) -> Result<ComponentId, ModelError> {
        let id = system.add_component(name, CLIENT_T)?;
        system.add_port(id, Self::CLIENT_PORT, REQUEST_PORT_T)?;
        Ok(id)
    }

    /// Adds a server group with `servers` replicated servers and the standard
    /// serve port. The group's `replicationCount` property is kept in sync.
    pub fn add_server_group(
        system: &mut System,
        name: &str,
        servers: usize,
    ) -> Result<ComponentId, ModelError> {
        let id = system.add_component(name, SERVER_GROUP_T)?;
        system.add_port(id, Self::GROUP_PORT, SERVE_PORT_T)?;
        for i in 1..=servers {
            let server = system.add_child_component(id, format!("{name}.Server{i}"), SERVER_T)?;
            system
                .component_mut(server)?
                .properties
                .set(props::IS_ACTIVE, true);
        }
        system
            .component_mut(id)?
            .properties
            .set(props::REPLICATION_COUNT, servers as i64);
        Ok(id)
    }

    /// Adds a replicated server to an existing group (the model-level effect
    /// of the `addServer()` operator).
    pub fn add_server_to_group(
        system: &mut System,
        group: ComponentId,
        name: &str,
    ) -> Result<ComponentId, ModelError> {
        let server = system.add_child_component(group, name, SERVER_T)?;
        system
            .component_mut(server)?
            .properties
            .set(props::IS_ACTIVE, true);
        let count = system.children_of(group)?.len() as i64;
        system
            .component_mut(group)?
            .properties
            .set(props::REPLICATION_COUNT, count);
        Ok(server)
    }

    /// Creates (or finds) the service connector for a server group. The
    /// connector is named `"<group>.Conn"` and has one server-side role
    /// attached to the group's serve port.
    pub fn service_connector(
        system: &mut System,
        group: ComponentId,
    ) -> Result<ConnectorId, ModelError> {
        let group_name = system.component(group)?.name.clone();
        let conn_name = format!("{group_name}.Conn");
        if let Some(existing) = system.connector_by_name(&conn_name) {
            return Ok(existing);
        }
        let conn = system.add_connector(&conn_name, SERVICE_CONN_T)?;
        let server_role = system.add_role(conn, "serverSide", SERVER_ROLE_T)?;
        let serve_port = system
            .component(group)?
            .ports
            .iter()
            .copied()
            .find(|p| {
                system
                    .port(*p)
                    .map(|p| p.name == Self::GROUP_PORT)
                    .unwrap_or(false)
            })
            .ok_or(ModelError::NameNotFound(format!(
                "{group_name}.{}",
                Self::GROUP_PORT
            )))?;
        system.attach(serve_port, server_role)?;
        Ok(conn)
    }

    /// Connects a client to a server group through the group's service
    /// connector, creating a client role named after the client.
    pub fn connect_client(
        system: &mut System,
        client: ComponentId,
        group: ComponentId,
    ) -> Result<ConnectorId, ModelError> {
        let conn = Self::service_connector(system, group)?;
        let client_name = system.component(client)?.name.clone();
        let role = system.add_role(conn, format!("{client_name}.role"), CLIENT_ROLE_T)?;
        let port = system
            .component(client)?
            .ports
            .iter()
            .copied()
            .find(|p| {
                system
                    .port(*p)
                    .map(|p| p.name == Self::CLIENT_PORT)
                    .unwrap_or(false)
            })
            .ok_or(ModelError::NameNotFound(format!(
                "{client_name}.{}",
                Self::CLIENT_PORT
            )))?;
        system.attach(port, role)?;
        Ok(conn)
    }

    /// The server group a client is currently connected to, if any.
    pub fn group_of_client(system: &System, client: ComponentId) -> Option<ComponentId> {
        for conn in system.connectors_of_component(client) {
            for comp in system.components_attached_to_connector(conn) {
                if let Ok(c) = system.component(comp) {
                    if c.ctype == SERVER_GROUP_T {
                        return Some(comp);
                    }
                }
            }
        }
        None
    }

    /// The clients currently connected to a server group.
    pub fn clients_of_group(system: &System, group: ComponentId) -> Vec<ComponentId> {
        let mut out = Vec::new();
        for conn in system.connectors_of_component(group) {
            for comp in system.components_attached_to_connector(conn) {
                if let Ok(c) = system.component(comp) {
                    if c.ctype == CLIENT_T {
                        out.push(comp);
                    }
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Checks the structural rules of the style.
    pub fn validate(system: &System) -> Vec<StyleViolation> {
        let mut violations = Vec::new();

        // Server groups attached to each connector, precomputed once. Rules
        // 1 and 5 both need this per connector; resolving it per *client*
        // (thousands of which share one service connector) would rescan the
        // shared connector's role list every time.
        let groups_of_conn: std::collections::HashMap<ConnectorId, Vec<ComponentId>> = system
            .connectors()
            .map(|(id, _)| {
                let groups: Vec<ComponentId> = system
                    .components_attached_to_connector(id)
                    .into_iter()
                    .filter(|c| {
                        system
                            .component(*c)
                            .map(|x| x.ctype == SERVER_GROUP_T)
                            .unwrap_or(false)
                    })
                    .collect();
                (id, groups)
            })
            .collect();

        // Rule 1: every client is connected to exactly one server group.
        for (id, comp) in system.components_of_type(CLIENT_T) {
            let groups: Vec<ComponentId> = system
                .connectors_of_component(id)
                .into_iter()
                .flat_map(|c| groups_of_conn.get(&c).into_iter().flatten().copied())
                .collect();
            if groups.len() != 1 {
                violations.push(StyleViolation {
                    rule: format!(
                        "client must be connected to exactly one server group (found {})",
                        groups.len()
                    ),
                    subject: comp.name.clone(),
                });
            }
        }

        // Rule 2: every server group has at least one active server.
        for (id, comp) in system.components_of_type(SERVER_GROUP_T) {
            let children = system.children_of(id).unwrap_or_default();
            let active = children
                .iter()
                .filter(|c| {
                    system
                        .component(**c)
                        .map(|s| {
                            s.ctype == SERVER_T
                                && s.properties.get_bool(props::IS_ACTIVE).unwrap_or(false)
                        })
                        .unwrap_or(false)
                })
                .count();
            if active == 0 {
                violations.push(StyleViolation {
                    rule: "server group must contain at least one active server".into(),
                    subject: comp.name.clone(),
                });
            }
            // Rule 3: replicationCount matches the number of servers.
            if let Some(count) = comp.properties.get_i64(props::REPLICATION_COUNT) {
                let servers = children
                    .iter()
                    .filter(|c| {
                        system
                            .component(**c)
                            .map(|s| s.ctype == SERVER_T)
                            .unwrap_or(false)
                    })
                    .count() as i64;
                if count != servers {
                    violations.push(StyleViolation {
                        rule: format!(
                            "replicationCount ({count}) does not match number of servers ({servers})"
                        ),
                        subject: comp.name.clone(),
                    });
                }
            }
        }

        // Rule 4: every server is inside a server group.
        for (id, comp) in system.components_of_type(SERVER_T) {
            let parent_ok = system
                .component(id)
                .ok()
                .and_then(|c| c.parent)
                .and_then(|p| system.component(p).ok())
                .map(|p| p.ctype == SERVER_GROUP_T)
                .unwrap_or(false);
            if !parent_ok {
                violations.push(StyleViolation {
                    rule: "server must be a member of a server group".into(),
                    subject: comp.name.clone(),
                });
            }
        }

        // Rule 5: every service connector has exactly one server group.
        for (id, conn) in system.connectors() {
            if conn.ctype != SERVICE_CONN_T {
                continue;
            }
            let groups = groups_of_conn.get(&id).map_or(0, Vec::len);
            if groups != 1 {
                violations.push(StyleViolation {
                    rule: format!(
                        "service connector must attach exactly one server group (found {groups})"
                    ),
                    subject: conn.name.clone(),
                });
            }
        }

        // Referential integrity of the underlying graph.
        for problem in system.integrity_errors() {
            violations.push(StyleViolation {
                rule: problem,
                subject: system.name.clone(),
            });
        }

        violations
    }

    /// Builds the deployment architecture of the paper's example (Figure 3):
    /// `groups` server groups with `servers_per_group` servers each, and
    /// `clients` users spread round-robin across the groups.
    pub fn example_system(
        name: &str,
        groups: usize,
        servers_per_group: usize,
        clients: usize,
    ) -> Result<System, ModelError> {
        let mut sys = System::new(name);
        sys.properties.set(props::MAX_LATENCY, 2.0);
        sys.properties.set(props::MAX_SERVER_LOAD, 6i64);
        sys.properties.set(props::MIN_BANDWIDTH, 10_000.0);
        let mut group_ids = Vec::new();
        for g in 1..=groups {
            let id = Self::add_server_group(&mut sys, &format!("ServerGrp{g}"), servers_per_group)?;
            group_ids.push(id);
        }
        for c in 1..=clients {
            let client = Self::add_client(&mut sys, &format!("User{c}"))?;
            let group = group_ids[(c - 1) % group_ids.len()];
            Self::connect_client(&mut sys, client, group)?;
        }
        Ok(sys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_system_is_valid() {
        let sys = ClientServerStyle::example_system("storage", 3, 3, 6).unwrap();
        assert_eq!(sys.components_of_type(CLIENT_T).count(), 6);
        assert_eq!(sys.components_of_type(SERVER_GROUP_T).count(), 3);
        assert_eq!(sys.components_of_type(SERVER_T).count(), 9);
        assert!(ClientServerStyle::validate(&sys).is_empty());
    }

    #[test]
    fn clients_are_spread_round_robin() {
        let sys = ClientServerStyle::example_system("storage", 2, 1, 4).unwrap();
        let g1 = sys.component_by_name("ServerGrp1").unwrap();
        let g2 = sys.component_by_name("ServerGrp2").unwrap();
        assert_eq!(ClientServerStyle::clients_of_group(&sys, g1).len(), 2);
        assert_eq!(ClientServerStyle::clients_of_group(&sys, g2).len(), 2);
    }

    #[test]
    fn group_of_client_resolves() {
        let sys = ClientServerStyle::example_system("storage", 2, 1, 2).unwrap();
        let u1 = sys.component_by_name("User1").unwrap();
        let g1 = sys.component_by_name("ServerGrp1").unwrap();
        assert_eq!(ClientServerStyle::group_of_client(&sys, u1), Some(g1));
    }

    #[test]
    fn disconnected_client_is_a_style_violation() {
        let mut sys = ClientServerStyle::example_system("storage", 1, 1, 1).unwrap();
        ClientServerStyle::add_client(&mut sys, "Loner").unwrap();
        let violations = ClientServerStyle::validate(&sys);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].subject, "Loner");
    }

    #[test]
    fn empty_server_group_is_a_style_violation() {
        let mut sys = ClientServerStyle::example_system("storage", 1, 1, 1).unwrap();
        let grp = sys.component_by_name("ServerGrp1").unwrap();
        let server = sys.component_by_name("ServerGrp1.Server1").unwrap();
        sys.remove_component(server).unwrap();
        // replicationCount now also disagrees.
        let violations = ClientServerStyle::validate(&sys);
        assert!(violations
            .iter()
            .any(|v| v.rule.contains("at least one active server")));
        assert!(violations
            .iter()
            .any(|v| v.rule.contains("replicationCount")));
        let _ = grp;
    }

    #[test]
    fn deactivated_servers_do_not_count() {
        let mut sys = ClientServerStyle::example_system("storage", 1, 1, 1).unwrap();
        let server = sys.component_by_name("ServerGrp1.Server1").unwrap();
        sys.component_mut(server)
            .unwrap()
            .properties
            .set(props::IS_ACTIVE, false);
        let violations = ClientServerStyle::validate(&sys);
        assert!(violations
            .iter()
            .any(|v| v.rule.contains("at least one active server")));
    }

    #[test]
    fn add_server_to_group_updates_replication_count() {
        let mut sys = ClientServerStyle::example_system("storage", 1, 2, 1).unwrap();
        let grp = sys.component_by_name("ServerGrp1").unwrap();
        ClientServerStyle::add_server_to_group(&mut sys, grp, "ServerGrp1.Server3").unwrap();
        assert_eq!(
            sys.component(grp)
                .unwrap()
                .properties
                .get_i64(props::REPLICATION_COUNT),
            Some(3)
        );
        assert!(ClientServerStyle::validate(&sys).is_empty());
    }

    #[test]
    fn orphan_server_is_a_style_violation() {
        let mut sys = System::new("broken");
        sys.add_component("StraySrv", SERVER_T).unwrap();
        let violations = ClientServerStyle::validate(&sys);
        assert!(violations
            .iter()
            .any(|v| v.rule.contains("member of a server group")));
    }

    #[test]
    fn service_connector_is_reused() {
        let mut sys = System::new("x");
        let grp = ClientServerStyle::add_server_group(&mut sys, "G", 1).unwrap();
        let c1 = ClientServerStyle::service_connector(&mut sys, grp).unwrap();
        let c2 = ClientServerStyle::service_connector(&mut sys, grp).unwrap();
        assert_eq!(c1, c2);
        assert_eq!(sys.connector_count(), 1);
    }
}
