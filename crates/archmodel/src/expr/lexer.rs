//! Tokenizer for the constraint-expression language.

use serde::{Deserialize, Serialize};

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Token {
    /// An identifier or keyword-free name.
    Ident(String),
    /// A numeric literal.
    Number(f64),
    /// Whether the number was written without a decimal point.
    Integer(i64),
    /// A string literal.
    Str(String),
    /// `true`
    True,
    /// `false`
    False,
    /// `and`
    And,
    /// `or`
    Or,
    /// `not`
    Not,
    /// `exists`
    Exists,
    /// `forall`
    Forall,
    /// `select`
    Select,
    /// `in`
    In,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `|`
    Pipe,
    /// `!`
    Bang,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `->`
    Arrow,
}

/// A lexing error with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub position: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `input` into a vector of tokens.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            ':' => {
                tokens.push(Token::Colon);
                i += 1;
            }
            '|' => {
                tokens.push(Token::Pipe);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] as char == '>' {
                    tokens.push(Token::Arrow);
                    i += 2;
                } else {
                    tokens.push(Token::Minus);
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] as char == '=' {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] as char == '=' {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] as char == '=' {
                    tokens.push(Token::EqEq);
                    i += 2;
                } else {
                    return Err(LexError {
                        position: i,
                        message: "expected '==' (single '=' is not an operator)".into(),
                    });
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] as char == '=' {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    tokens.push(Token::Bang);
                    i += 1;
                }
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] as char != '"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError {
                        position: i,
                        message: "unterminated string literal".into(),
                    });
                }
                tokens.push(Token::Str(input[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                let mut saw_dot = false;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_digit() {
                        j += 1;
                    } else if d == '.'
                        && !saw_dot
                        && j + 1 < bytes.len()
                        && (bytes[j + 1] as char).is_ascii_digit()
                    {
                        saw_dot = true;
                        j += 1;
                    } else if (d == 'e' || d == 'E')
                        && j + 1 < bytes.len()
                        && ((bytes[j + 1] as char).is_ascii_digit() || bytes[j + 1] as char == '-')
                    {
                        saw_dot = true;
                        j += 2;
                    } else {
                        break;
                    }
                }
                let text = &input[start..j];
                if saw_dot {
                    let value: f64 = text.parse().map_err(|_| LexError {
                        position: start,
                        message: format!("invalid number: {text}"),
                    })?;
                    tokens.push(Token::Number(value));
                } else {
                    let value: i64 = text.parse().map_err(|_| LexError {
                        position: start,
                        message: format!("invalid integer: {text}"),
                    })?;
                    tokens.push(Token::Integer(value));
                }
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_alphanumeric() || d == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let word = &input[start..j];
                let token = match word {
                    "true" => Token::True,
                    "false" => Token::False,
                    "and" => Token::And,
                    "or" => Token::Or,
                    "not" => Token::Not,
                    "exists" => Token::Exists,
                    "forall" => Token::Forall,
                    "select" => Token::Select,
                    "in" => Token::In,
                    _ => Token::Ident(word.to_string()),
                };
                tokens.push(token);
                i = j;
            }
            other => {
                return Err(LexError {
                    position: i,
                    message: format!("unexpected character: {other:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_the_paper_invariant() {
        let tokens = tokenize("averageLatency <= maxLatency").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("averageLatency".into()),
                Token::Le,
                Token::Ident("maxLatency".into()),
            ]
        );
    }

    #[test]
    fn tokenizes_numbers_and_scientific_notation() {
        let tokens = tokenize("2 + 1.5 * 10e6").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Integer(2),
                Token::Plus,
                Token::Number(1.5),
                Token::Star,
                Token::Number(10e6),
            ]
        );
    }

    #[test]
    fn tokenizes_quantifier_syntax() {
        let tokens =
            tokenize("exists sgrp : ServerGroupT in components | sgrp.load > maxServerLoad")
                .unwrap();
        assert!(tokens.contains(&Token::Exists));
        assert!(tokens.contains(&Token::Colon));
        assert!(tokens.contains(&Token::In));
        assert!(tokens.contains(&Token::Pipe));
        assert!(tokens.contains(&Token::Dot));
    }

    #[test]
    fn comparison_operators() {
        let tokens = tokenize("< <= > >= == != -> !").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::EqEq,
                Token::Ne,
                Token::Arrow,
                Token::Bang,
            ]
        );
    }

    #[test]
    fn string_literals() {
        let tokens = tokenize("name == \"ServerGrp1\"").unwrap();
        assert_eq!(tokens[2], Token::Str("ServerGrp1".into()));
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(tokenize("\"oops").is_err());
    }

    #[test]
    fn rejects_single_equals() {
        assert!(tokenize("a = b").is_err());
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(tokenize("a # b").is_err());
    }

    #[test]
    fn keywords_vs_identifiers() {
        let tokens = tokenize("andrew and exists_x exists").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("andrew".into()),
                Token::And,
                Token::Ident("exists_x".into()),
                Token::Exists,
            ]
        );
    }
}
