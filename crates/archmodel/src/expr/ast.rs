//! Abstract syntax of the constraint-expression language.
//!
//! The language is a small subset of Armani (the Acme constraint language)
//! sufficient to express the paper's invariants and tactic preconditions,
//! e.g. `averageLatency <= maxLatency`, `exists sgrp : ServerGroupT in
//! components | connected(sgrp, client) and sgrp.load > maxServerLoad`.

use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Binary operators, in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// Logical disjunction.
    Or,
    /// Logical conjunction.
    And,
    /// Implication (`->`).
    Implies,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-than-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-than-or-equal.
    Ge,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnaryOp {
    /// Logical negation (`!` or `not`).
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Kinds of quantified expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuantifierKind {
    /// True if some element of the domain satisfies the body.
    Exists,
    /// True if every element of the domain satisfies the body.
    Forall,
    /// The set of domain elements satisfying the body.
    Select,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// An identifier: a quantifier binding, a system property, or one of the
    /// built-in collections `components` / `connectors`.
    Ident(String),
    /// Property access `target.name` (also `.name`, `.type`, `.ports`,
    /// `.roles`, `.children`, `.size`).
    Property(Box<Expr>, String),
    /// A unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// A function call such as `connected(a, b)`, `attached(c, r)`,
    /// `size(xs)`.
    Call(String, Vec<Expr>),
    /// A quantified expression
    /// `exists x : TypeT in domain | body`.
    Quantifier {
        /// Exists / forall / select.
        kind: QuantifierKind,
        /// The bound variable name.
        var: String,
        /// Optional element-type filter (e.g. `ServerGroupT`).
        type_filter: Option<String>,
        /// The collection expression being quantified over.
        domain: Box<Expr>,
        /// The predicate applied to each element.
        body: Box<Expr>,
    },
}

/// The property read-set of a constraint expression: which parts of the
/// architectural model the expression can observe. Incremental constraint
/// checking intersects this with the model's dirty set to decide which
/// (invariant, element) pairs a batch of changes can affect.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PropertyReadSet {
    /// Property names read off the bound `self` element (`self.load`).
    /// Sorted and deduplicated.
    pub self_props: Vec<String>,
    /// Bare identifiers: system properties, element names, or the built-in
    /// collections. Sorted and deduplicated.
    pub idents: Vec<String>,
    /// True when the expression reads state this analysis cannot attribute to
    /// a `(element, property)` pair — quantifier bodies, function calls, and
    /// property access on anything but a bare `self`. An opaque invariant
    /// must be re-evaluated whenever *any* model change happened.
    pub opaque: bool,
}

impl Expr {
    /// Convenience constructor for a float literal.
    pub fn float(v: f64) -> Expr {
        Expr::Literal(Value::Float(v))
    }

    /// Convenience constructor for an int literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Value::Int(v))
    }

    /// Convenience constructor for an identifier.
    pub fn ident(name: &str) -> Expr {
        Expr::Ident(name.to_string())
    }

    /// Convenience constructor for property access.
    pub fn prop(target: Expr, name: &str) -> Expr {
        Expr::Property(Box::new(target), name.to_string())
    }

    /// Convenience constructor for a binary operation.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// All identifiers referenced (free or bound) in the expression; useful
    /// for dependency analysis of constraints.
    pub fn referenced_idents(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_idents(&mut out);
        out.sort();
        out.dedup();
        out
    }

    /// The property read-set of the expression (see [`PropertyReadSet`]).
    ///
    /// The analysis is deliberately conservative: only `self.prop` access and
    /// bare identifiers are attributed precisely; everything else (quantifier
    /// bodies, calls such as `connected(a, b)`, chained property access)
    /// marks the read-set opaque, which forces re-evaluation on any change.
    /// Structural reads (`.children`, `.roles`, element identity) need no
    /// attribution here because structural model operations invalidate the
    /// incremental cache wholesale.
    pub fn referenced_properties(&self) -> PropertyReadSet {
        let mut out = PropertyReadSet::default();
        self.collect_reads(&mut out);
        out.self_props.sort();
        out.self_props.dedup();
        out.idents.sort();
        out.idents.dedup();
        out
    }

    fn collect_reads(&self, out: &mut PropertyReadSet) {
        match self {
            Expr::Literal(_) => {}
            Expr::Ident(name) => {
                if name == "self" {
                    // A bare `self` flows into a call or comparison whose
                    // meaning this analysis does not model.
                    out.opaque = true;
                } else {
                    out.idents.push(name.clone());
                }
            }
            Expr::Property(target, name) => match target.as_ref() {
                Expr::Ident(t) if t == "self" => out.self_props.push(name.clone()),
                _ => {
                    out.opaque = true;
                    target.collect_reads(out);
                }
            },
            Expr::Unary(_, e) => e.collect_reads(out),
            Expr::Binary(_, l, r) => {
                l.collect_reads(out);
                r.collect_reads(out);
            }
            Expr::Call(_, args) => {
                out.opaque = true;
                for a in args {
                    a.collect_reads(out);
                }
            }
            Expr::Quantifier { domain, body, .. } => {
                out.opaque = true;
                domain.collect_reads(out);
                body.collect_reads(out);
            }
        }
    }

    fn collect_idents(&self, out: &mut Vec<String>) {
        match self {
            Expr::Literal(_) => {}
            Expr::Ident(name) => out.push(name.clone()),
            Expr::Property(target, _) => target.collect_idents(out),
            Expr::Unary(_, e) => e.collect_idents(out),
            Expr::Binary(_, l, r) => {
                l.collect_idents(out);
                r.collect_idents(out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_idents(out);
                }
            }
            Expr::Quantifier {
                var, domain, body, ..
            } => {
                domain.collect_idents(out);
                body.collect_idents(out);
                out.retain(|n| n != var);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_construct_expected_shapes() {
        let e = Expr::bin(
            BinOp::Le,
            Expr::prop(Expr::ident("self"), "averageLatency"),
            Expr::ident("maxLatency"),
        );
        match e {
            Expr::Binary(BinOp::Le, lhs, rhs) => {
                assert!(matches!(*lhs, Expr::Property(_, ref n) if n == "averageLatency"));
                assert!(matches!(*rhs, Expr::Ident(ref n) if n == "maxLatency"));
            }
            _ => panic!("unexpected shape"),
        }
    }

    #[test]
    fn referenced_idents_excludes_bound_vars() {
        let e = Expr::Quantifier {
            kind: QuantifierKind::Exists,
            var: "c".into(),
            type_filter: Some("ClientT".into()),
            domain: Box::new(Expr::ident("components")),
            body: Box::new(Expr::bin(
                BinOp::Gt,
                Expr::prop(Expr::ident("c"), "load"),
                Expr::ident("maxServerLoad"),
            )),
        };
        let ids = e.referenced_idents();
        assert!(ids.contains(&"components".to_string()));
        assert!(ids.contains(&"maxServerLoad".to_string()));
        assert!(!ids.contains(&"c".to_string()));
    }

    #[test]
    fn read_set_attributes_self_props_and_idents_precisely() {
        let e = crate::expr::parse("self.averageLatency <= maxLatency").unwrap();
        let reads = e.referenced_properties();
        assert_eq!(reads.self_props, vec!["averageLatency".to_string()]);
        assert_eq!(reads.idents, vec!["maxLatency".to_string()]);
        assert!(!reads.opaque);
    }

    #[test]
    fn read_set_dedups_and_sorts() {
        let e =
            crate::expr::parse("self.load <= maxServerLoad and self.load >= 0 and self.base <= 1")
                .unwrap();
        let reads = e.referenced_properties();
        assert_eq!(
            reads.self_props,
            vec!["base".to_string(), "load".to_string()]
        );
        assert!(!reads.opaque);
    }

    #[test]
    fn calls_quantifiers_and_chained_access_are_opaque() {
        for text in [
            "size(select g : ServerGroupT in components | g.load >= 0) >= 1",
            "forall c : ClientT in components | c.averageLatency <= maxLatency",
            "connected(self, other)",
        ] {
            let reads = crate::expr::parse(text).unwrap().referenced_properties();
            assert!(reads.opaque, "{text} should be opaque");
        }
    }
}
