//! Abstract syntax of the constraint-expression language.
//!
//! The language is a small subset of Armani (the Acme constraint language)
//! sufficient to express the paper's invariants and tactic preconditions,
//! e.g. `averageLatency <= maxLatency`, `exists sgrp : ServerGroupT in
//! components | connected(sgrp, client) and sgrp.load > maxServerLoad`.

use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Binary operators, in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// Logical disjunction.
    Or,
    /// Logical conjunction.
    And,
    /// Implication (`->`).
    Implies,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-than-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-than-or-equal.
    Ge,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnaryOp {
    /// Logical negation (`!` or `not`).
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Kinds of quantified expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuantifierKind {
    /// True if some element of the domain satisfies the body.
    Exists,
    /// True if every element of the domain satisfies the body.
    Forall,
    /// The set of domain elements satisfying the body.
    Select,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// An identifier: a quantifier binding, a system property, or one of the
    /// built-in collections `components` / `connectors`.
    Ident(String),
    /// Property access `target.name` (also `.name`, `.type`, `.ports`,
    /// `.roles`, `.children`, `.size`).
    Property(Box<Expr>, String),
    /// A unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// A function call such as `connected(a, b)`, `attached(c, r)`,
    /// `size(xs)`.
    Call(String, Vec<Expr>),
    /// A quantified expression
    /// `exists x : TypeT in domain | body`.
    Quantifier {
        /// Exists / forall / select.
        kind: QuantifierKind,
        /// The bound variable name.
        var: String,
        /// Optional element-type filter (e.g. `ServerGroupT`).
        type_filter: Option<String>,
        /// The collection expression being quantified over.
        domain: Box<Expr>,
        /// The predicate applied to each element.
        body: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for a float literal.
    pub fn float(v: f64) -> Expr {
        Expr::Literal(Value::Float(v))
    }

    /// Convenience constructor for an int literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Value::Int(v))
    }

    /// Convenience constructor for an identifier.
    pub fn ident(name: &str) -> Expr {
        Expr::Ident(name.to_string())
    }

    /// Convenience constructor for property access.
    pub fn prop(target: Expr, name: &str) -> Expr {
        Expr::Property(Box::new(target), name.to_string())
    }

    /// Convenience constructor for a binary operation.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// All identifiers referenced (free or bound) in the expression; useful
    /// for dependency analysis of constraints.
    pub fn referenced_idents(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_idents(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_idents(&self, out: &mut Vec<String>) {
        match self {
            Expr::Literal(_) => {}
            Expr::Ident(name) => out.push(name.clone()),
            Expr::Property(target, _) => target.collect_idents(out),
            Expr::Unary(_, e) => e.collect_idents(out),
            Expr::Binary(_, l, r) => {
                l.collect_idents(out);
                r.collect_idents(out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_idents(out);
                }
            }
            Expr::Quantifier {
                var, domain, body, ..
            } => {
                domain.collect_idents(out);
                body.collect_idents(out);
                out.retain(|n| n != var);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_construct_expected_shapes() {
        let e = Expr::bin(
            BinOp::Le,
            Expr::prop(Expr::ident("self"), "averageLatency"),
            Expr::ident("maxLatency"),
        );
        match e {
            Expr::Binary(BinOp::Le, lhs, rhs) => {
                assert!(matches!(*lhs, Expr::Property(_, ref n) if n == "averageLatency"));
                assert!(matches!(*rhs, Expr::Ident(ref n) if n == "maxLatency"));
            }
            _ => panic!("unexpected shape"),
        }
    }

    #[test]
    fn referenced_idents_excludes_bound_vars() {
        let e = Expr::Quantifier {
            kind: QuantifierKind::Exists,
            var: "c".into(),
            type_filter: Some("ClientT".into()),
            domain: Box::new(Expr::ident("components")),
            body: Box::new(Expr::bin(
                BinOp::Gt,
                Expr::prop(Expr::ident("c"), "load"),
                Expr::ident("maxServerLoad"),
            )),
        };
        let ids = e.referenced_idents();
        assert!(ids.contains(&"components".to_string()));
        assert!(ids.contains(&"maxServerLoad".to_string()));
        assert!(!ids.contains(&"c".to_string()));
    }
}
