//! Evaluator for constraint expressions against an architectural model.

use super::ast::{BinOp, Expr, QuantifierKind, UnaryOp};
use crate::element::ElementRef;
use crate::system::System;
use crate::value::Value;
use std::collections::BTreeMap;

/// The result of evaluating an expression: either a plain value, a single
/// architectural element, or a collection of elements.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalValue {
    /// A property-style value.
    Val(Value),
    /// A reference to one element.
    Element(ElementRef),
    /// A collection of elements (the result of `select`, `components`, ...).
    Elements(Vec<ElementRef>),
}

impl EvalValue {
    /// Interprets the result as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            EvalValue::Val(Value::Bool(b)) => Some(*b),
            _ => None,
        }
    }

    /// Interprets the result as a float (coercing integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            EvalValue::Val(v) => v.as_f64(),
            _ => None,
        }
    }
}

/// Errors produced during evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// An identifier could not be resolved.
    UnknownIdentifier(String),
    /// An element lacks the requested property.
    MissingProperty(String, String),
    /// The operands of an operator had incompatible types.
    TypeMismatch(String),
    /// An unknown function was called.
    UnknownFunction(String),
    /// A function was called with the wrong number or kinds of arguments.
    BadArguments(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::UnknownIdentifier(n) => write!(f, "unknown identifier: {n}"),
            EvalError::MissingProperty(el, p) => write!(f, "element {el} has no property {p}"),
            EvalError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            EvalError::UnknownFunction(n) => write!(f, "unknown function: {n}"),
            EvalError::BadArguments(m) => write!(f, "bad arguments: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A set of variable bindings used while evaluating.
pub type Bindings = BTreeMap<String, EvalValue>;

/// Evaluates `expr` against `system` with the given variable bindings.
pub fn eval(expr: &Expr, system: &System, bindings: &Bindings) -> Result<EvalValue, EvalError> {
    match expr {
        Expr::Literal(v) => Ok(EvalValue::Val(v.clone())),
        Expr::Ident(name) => resolve_ident(name, system, bindings),
        Expr::Property(target, name) => {
            let target = eval(target, system, bindings)?;
            access_property(&target, name, system)
        }
        Expr::Unary(op, inner) => {
            let v = eval(inner, system, bindings)?;
            match op {
                UnaryOp::Not => {
                    let b = v.as_bool().ok_or_else(|| {
                        EvalError::TypeMismatch("'not' requires a boolean".into())
                    })?;
                    Ok(EvalValue::Val(Value::Bool(!b)))
                }
                UnaryOp::Neg => {
                    let n = v.as_f64().ok_or_else(|| {
                        EvalError::TypeMismatch("negation requires a number".into())
                    })?;
                    Ok(EvalValue::Val(Value::Float(-n)))
                }
            }
        }
        Expr::Binary(op, lhs, rhs) => eval_binary(*op, lhs, rhs, system, bindings),
        Expr::Call(name, args) => eval_call(name, args, system, bindings),
        Expr::Quantifier {
            kind,
            var,
            type_filter,
            domain,
            body,
        } => eval_quantifier(
            *kind,
            var,
            type_filter.as_deref(),
            domain,
            body,
            system,
            bindings,
        ),
    }
}

/// Evaluates an expression expected to produce a boolean (the common case for
/// invariants and tactic preconditions).
pub fn eval_bool(expr: &Expr, system: &System, bindings: &Bindings) -> Result<bool, EvalError> {
    let v = eval(expr, system, bindings)?;
    v.as_bool()
        .ok_or_else(|| EvalError::TypeMismatch("expected a boolean result".into()))
}

fn resolve_ident(name: &str, system: &System, bindings: &Bindings) -> Result<EvalValue, EvalError> {
    if let Some(v) = bindings.get(name) {
        return Ok(v.clone());
    }
    match name {
        "components" => Ok(EvalValue::Elements(
            system
                .components()
                .map(|(id, _)| ElementRef::Component(id))
                .collect(),
        )),
        "connectors" => Ok(EvalValue::Elements(
            system
                .connectors()
                .map(|(id, _)| ElementRef::Connector(id))
                .collect(),
        )),
        _ => {
            if let Some(v) = system.properties.get(name) {
                return Ok(EvalValue::Val(v.clone()));
            }
            // Fall back to an element with that name (lets constraints say
            // `ServerGrp1.load` or `Conn1.roles`).
            if let Some(id) = system.component_by_name(name) {
                return Ok(EvalValue::Element(ElementRef::Component(id)));
            }
            if let Some(id) = system.connector_by_name(name) {
                return Ok(EvalValue::Element(ElementRef::Connector(id)));
            }
            Err(EvalError::UnknownIdentifier(name.to_string()))
        }
    }
}

fn access_property(
    target: &EvalValue,
    name: &str,
    system: &System,
) -> Result<EvalValue, EvalError> {
    match target {
        EvalValue::Element(el) => {
            // Structural pseudo-properties first.
            match (el, name) {
                (_, "name") => {
                    return Ok(EvalValue::Val(Value::Str(system.element_name(*el))));
                }
                (ElementRef::Component(id), "type") => {
                    let c = system
                        .component(*id)
                        .map_err(|_| EvalError::MissingProperty(el.to_string(), name.into()))?;
                    return Ok(EvalValue::Val(Value::Str(c.ctype.clone())));
                }
                (ElementRef::Component(id), "ports") => {
                    let c = system
                        .component(*id)
                        .map_err(|_| EvalError::MissingProperty(el.to_string(), name.into()))?;
                    return Ok(EvalValue::Elements(
                        c.ports.iter().map(|p| ElementRef::Port(*p)).collect(),
                    ));
                }
                (ElementRef::Component(id), "children")
                | (ElementRef::Component(id), "members") => {
                    let c = system
                        .component(*id)
                        .map_err(|_| EvalError::MissingProperty(el.to_string(), name.into()))?;
                    return Ok(EvalValue::Elements(
                        c.children
                            .iter()
                            .map(|c| ElementRef::Component(*c))
                            .collect(),
                    ));
                }
                (ElementRef::Connector(id), "roles") => {
                    let c = system
                        .connector(*id)
                        .map_err(|_| EvalError::MissingProperty(el.to_string(), name.into()))?;
                    return Ok(EvalValue::Elements(
                        c.roles.iter().map(|r| ElementRef::Role(*r)).collect(),
                    ));
                }
                _ => {}
            }
            system
                .get_property(*el, name)
                .cloned()
                .map(EvalValue::Val)
                .ok_or_else(|| EvalError::MissingProperty(system.element_name(*el), name.into()))
        }
        EvalValue::Val(Value::Set(items)) if name == "size" => {
            Ok(EvalValue::Val(Value::Int(items.len() as i64)))
        }
        EvalValue::Elements(items) if name == "size" => {
            Ok(EvalValue::Val(Value::Int(items.len() as i64)))
        }
        other => Err(EvalError::TypeMismatch(format!(
            "cannot access property {name} on {other:?}"
        ))),
    }
}

fn eval_binary(
    op: BinOp,
    lhs: &Expr,
    rhs: &Expr,
    system: &System,
    bindings: &Bindings,
) -> Result<EvalValue, EvalError> {
    // Short-circuit logical operators.
    match op {
        BinOp::And => {
            let l = eval_bool(lhs, system, bindings)?;
            if !l {
                return Ok(EvalValue::Val(Value::Bool(false)));
            }
            return Ok(EvalValue::Val(Value::Bool(eval_bool(
                rhs, system, bindings,
            )?)));
        }
        BinOp::Or => {
            let l = eval_bool(lhs, system, bindings)?;
            if l {
                return Ok(EvalValue::Val(Value::Bool(true)));
            }
            return Ok(EvalValue::Val(Value::Bool(eval_bool(
                rhs, system, bindings,
            )?)));
        }
        BinOp::Implies => {
            let l = eval_bool(lhs, system, bindings)?;
            if !l {
                return Ok(EvalValue::Val(Value::Bool(true)));
            }
            return Ok(EvalValue::Val(Value::Bool(eval_bool(
                rhs, system, bindings,
            )?)));
        }
        _ => {}
    }

    let l = eval(lhs, system, bindings)?;
    let r = eval(rhs, system, bindings)?;
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
            let (a, b) = numeric_operands(&l, &r, op)?;
            let out = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Err(EvalError::TypeMismatch("division by zero".into()));
                    }
                    a / b
                }
                _ => unreachable!(),
            };
            Ok(EvalValue::Val(Value::Float(out)))
        }
        BinOp::Eq | BinOp::Ne => {
            let equal = match (&l, &r) {
                (EvalValue::Val(a), EvalValue::Val(b)) => a.loosely_equals(b),
                (EvalValue::Element(a), EvalValue::Element(b)) => a == b,
                (EvalValue::Elements(a), EvalValue::Elements(b)) => a == b,
                _ => false,
            };
            Ok(EvalValue::Val(Value::Bool(if op == BinOp::Eq {
                equal
            } else {
                !equal
            })))
        }
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let (a, b) = numeric_operands(&l, &r, op)?;
            let result = match op {
                BinOp::Lt => a < b,
                BinOp::Le => a <= b,
                BinOp::Gt => a > b,
                BinOp::Ge => a >= b,
                _ => unreachable!(),
            };
            Ok(EvalValue::Val(Value::Bool(result)))
        }
        BinOp::And | BinOp::Or | BinOp::Implies => unreachable!("handled above"),
    }
}

fn numeric_operands(l: &EvalValue, r: &EvalValue, op: BinOp) -> Result<(f64, f64), EvalError> {
    match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => Ok((a, b)),
        _ => Err(EvalError::TypeMismatch(format!(
            "operator {op:?} requires numeric operands, got {l:?} and {r:?}"
        ))),
    }
}

fn eval_call(
    name: &str,
    args: &[Expr],
    system: &System,
    bindings: &Bindings,
) -> Result<EvalValue, EvalError> {
    let evaluated: Vec<EvalValue> = args
        .iter()
        .map(|a| eval(a, system, bindings))
        .collect::<Result<_, _>>()?;
    match name {
        "size" => {
            if evaluated.len() != 1 {
                return Err(EvalError::BadArguments("size(x) takes one argument".into()));
            }
            match &evaluated[0] {
                EvalValue::Elements(items) => Ok(EvalValue::Val(Value::Int(items.len() as i64))),
                EvalValue::Val(Value::Set(items)) => {
                    Ok(EvalValue::Val(Value::Int(items.len() as i64)))
                }
                other => Err(EvalError::BadArguments(format!(
                    "size() expects a collection, got {other:?}"
                ))),
            }
        }
        "connected" => {
            if evaluated.len() != 2 {
                return Err(EvalError::BadArguments(
                    "connected(a, b) takes two arguments".into(),
                ));
            }
            match (&evaluated[0], &evaluated[1]) {
                (
                    EvalValue::Element(ElementRef::Component(a)),
                    EvalValue::Element(ElementRef::Component(b)),
                ) => Ok(EvalValue::Val(Value::Bool(system.connected(*a, *b)))),
                _ => Err(EvalError::BadArguments(
                    "connected() expects two components".into(),
                )),
            }
        }
        "attached" => {
            if evaluated.len() != 2 {
                return Err(EvalError::BadArguments(
                    "attached(x, role) takes two arguments".into(),
                ));
            }
            let result = match (&evaluated[0], &evaluated[1]) {
                (
                    EvalValue::Element(ElementRef::Port(p)),
                    EvalValue::Element(ElementRef::Role(r)),
                )
                | (
                    EvalValue::Element(ElementRef::Role(r)),
                    EvalValue::Element(ElementRef::Port(p)),
                ) => system.attached(*p, *r),
                (
                    EvalValue::Element(ElementRef::Component(c)),
                    EvalValue::Element(ElementRef::Role(r)),
                )
                | (
                    EvalValue::Element(ElementRef::Role(r)),
                    EvalValue::Element(ElementRef::Component(c)),
                ) => system.component_attached_to_role(*r) == Some(*c),
                _ => {
                    return Err(EvalError::BadArguments(
                        "attached() expects (port, role) or (component, role)".into(),
                    ))
                }
            };
            Ok(EvalValue::Val(Value::Bool(result)))
        }
        "contains" => {
            if evaluated.len() != 2 {
                return Err(EvalError::BadArguments(
                    "contains(set, x) takes two arguments".into(),
                ));
            }
            match (&evaluated[0], &evaluated[1]) {
                (EvalValue::Elements(items), EvalValue::Element(e)) => {
                    Ok(EvalValue::Val(Value::Bool(items.contains(e))))
                }
                (EvalValue::Val(Value::Set(items)), EvalValue::Val(v)) => Ok(EvalValue::Val(
                    Value::Bool(items.iter().any(|i| i.loosely_equals(v))),
                )),
                _ => Err(EvalError::BadArguments(
                    "contains() expects a collection and an element".into(),
                )),
            }
        }
        "isEmpty" => {
            if evaluated.len() != 1 {
                return Err(EvalError::BadArguments(
                    "isEmpty(x) takes one argument".into(),
                ));
            }
            match &evaluated[0] {
                EvalValue::Elements(items) => Ok(EvalValue::Val(Value::Bool(items.is_empty()))),
                EvalValue::Val(Value::Set(items)) => {
                    Ok(EvalValue::Val(Value::Bool(items.is_empty())))
                }
                other => Err(EvalError::BadArguments(format!(
                    "isEmpty() expects a collection, got {other:?}"
                ))),
            }
        }
        other => Err(EvalError::UnknownFunction(other.to_string())),
    }
}

fn element_matches_type(el: &ElementRef, ty: &str, system: &System) -> bool {
    match el {
        ElementRef::Component(id) => system
            .component(*id)
            .map(|c| c.ctype == ty)
            .unwrap_or(false),
        ElementRef::Connector(id) => system
            .connector(*id)
            .map(|c| c.ctype == ty)
            .unwrap_or(false),
        ElementRef::Port(id) => system.port(*id).map(|p| p.ptype == ty).unwrap_or(false),
        ElementRef::Role(id) => system.role(*id).map(|r| r.rtype == ty).unwrap_or(false),
    }
}

fn eval_quantifier(
    kind: QuantifierKind,
    var: &str,
    type_filter: Option<&str>,
    domain: &Expr,
    body: &Expr,
    system: &System,
    bindings: &Bindings,
) -> Result<EvalValue, EvalError> {
    let domain_value = eval(domain, system, bindings)?;
    let elements: Vec<ElementRef> = match domain_value {
        EvalValue::Elements(items) => items,
        EvalValue::Element(e) => vec![e],
        other => {
            return Err(EvalError::TypeMismatch(format!(
                "quantifier domain must be a collection of elements, got {other:?}"
            )))
        }
    };
    let filtered: Vec<ElementRef> = elements
        .into_iter()
        .filter(|e| type_filter.is_none_or(|t| element_matches_type(e, t, system)))
        .collect();

    let mut selected = Vec::new();
    let mut any = false;
    let mut all = true;
    for el in &filtered {
        let mut inner = bindings.clone();
        inner.insert(var.to_string(), EvalValue::Element(*el));
        let holds = eval_bool(body, system, &inner)?;
        any |= holds;
        all &= holds;
        if holds {
            selected.push(*el);
        }
        // Short-circuit where possible.
        if kind == QuantifierKind::Exists && any {
            return Ok(EvalValue::Val(Value::Bool(true)));
        }
        if kind == QuantifierKind::Forall && !all {
            return Ok(EvalValue::Val(Value::Bool(false)));
        }
    }
    match kind {
        QuantifierKind::Exists => Ok(EvalValue::Val(Value::Bool(any))),
        QuantifierKind::Forall => Ok(EvalValue::Val(Value::Bool(all))),
        QuantifierKind::Select => Ok(EvalValue::Elements(selected)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::parser::parse;
    use crate::value::Value;

    /// Builds the paper's example system: one client connected to ServerGrp1
    /// (3 servers), plus an unconnected ServerGrp2.
    fn example_system() -> System {
        let mut sys = System::new("storage");
        sys.properties.set("maxLatency", 2.0);
        sys.properties.set("maxServerLoad", 6i64);
        sys.properties.set("minBandwidth", 10_000.0);

        let client = sys.add_component("User1", "ClientT").unwrap();
        let grp1 = sys.add_component("ServerGrp1", "ServerGroupT").unwrap();
        let grp2 = sys.add_component("ServerGrp2", "ServerGroupT").unwrap();
        for i in 1..=3 {
            let s = sys
                .add_child_component(grp1, format!("Server{i}"), "ServerT")
                .unwrap();
            sys.component_mut(s)
                .unwrap()
                .properties
                .set("isActive", true);
        }
        sys.component_mut(client)
            .unwrap()
            .properties
            .set("averageLatency", 1.0);
        sys.component_mut(grp1)
            .unwrap()
            .properties
            .set("load", 3i64);
        sys.component_mut(grp2)
            .unwrap()
            .properties
            .set("load", 0i64);

        let conn = sys.add_connector("Conn1", "ServiceConnT").unwrap();
        let cport = sys.add_port(client, "request", "RequestT").unwrap();
        let gport = sys.add_port(grp1, "serve", "ServeT").unwrap();
        let crole = sys.add_role(conn, "clientSide", "ClientRoleT").unwrap();
        let grole = sys.add_role(conn, "serverSide", "ServerRoleT").unwrap();
        sys.role_mut(crole)
            .unwrap()
            .properties
            .set("bandwidth", 5.0e6);
        sys.attach(cport, crole).unwrap();
        sys.attach(gport, grole).unwrap();
        sys
    }

    fn check(expr: &str, sys: &System) -> bool {
        let parsed = parse(expr).unwrap();
        eval_bool(&parsed, sys, &Bindings::new()).unwrap()
    }

    #[test]
    fn latency_invariant_from_the_paper() {
        let sys = example_system();
        assert!(check("User1.averageLatency <= maxLatency", &sys));
    }

    #[test]
    fn violated_invariant_detected() {
        let mut sys = example_system();
        let client = sys.component_by_name("User1").unwrap();
        sys.component_mut(client)
            .unwrap()
            .properties
            .set("averageLatency", 5.0);
        assert!(!check("User1.averageLatency <= maxLatency", &sys));
    }

    #[test]
    fn exists_overloaded_server_group() {
        let mut sys = example_system();
        assert!(!check(
            "exists g : ServerGroupT in components | g.load > maxServerLoad",
            &sys
        ));
        let grp = sys.component_by_name("ServerGrp1").unwrap();
        sys.component_mut(grp)
            .unwrap()
            .properties
            .set("load", 10i64);
        assert!(check(
            "exists g : ServerGroupT in components | g.load > maxServerLoad",
            &sys
        ));
    }

    #[test]
    fn forall_children_active() {
        let sys = example_system();
        assert!(check(
            "forall s : ServerT in ServerGrp1.children | s.isActive",
            &sys
        ));
    }

    #[test]
    fn select_and_size() {
        let sys = example_system();
        assert!(check(
            "size(select s : ServerT in ServerGrp1.children | s.isActive) == 3",
            &sys
        ));
        assert!(check(
            "size(select g : ServerGroupT in components | g.load == 0) == 1",
            &sys
        ));
    }

    #[test]
    fn connected_function() {
        let sys = example_system();
        assert!(check("connected(User1, ServerGrp1)", &sys));
        assert!(!check("connected(User1, ServerGrp2)", &sys));
    }

    #[test]
    fn quantifier_with_connected_and_bound_variable() {
        let sys = example_system();
        assert!(check(
            "exists g : ServerGroupT in components | connected(g, User1) and g.load <= maxServerLoad",
            &sys
        ));
    }

    #[test]
    fn role_bandwidth_constraint() {
        let sys = example_system();
        // The client's role has 5 Mbps, far above the 10 Kbps minimum.
        assert!(check(
            "forall r : ClientRoleT in Conn1.roles | r.bandwidth >= minBandwidth",
            &sys
        ));
    }

    #[test]
    fn arithmetic_and_implication() {
        let sys = example_system();
        assert!(check("1 + 2 * 3 == 7", &sys));
        assert!(check("ServerGrp1.load > 10 -> false", &sys));
        assert!(check("!(ServerGrp1.load > 10)", &sys));
    }

    #[test]
    fn missing_property_is_an_error() {
        let sys = example_system();
        let parsed = parse("User1.nonexistent > 0").unwrap();
        assert!(matches!(
            eval_bool(&parsed, &sys, &Bindings::new()),
            Err(EvalError::MissingProperty(_, _))
        ));
    }

    #[test]
    fn unknown_identifier_is_an_error() {
        let sys = example_system();
        let parsed = parse("nonsense > 0").unwrap();
        assert!(matches!(
            eval_bool(&parsed, &sys, &Bindings::new()),
            Err(EvalError::UnknownIdentifier(_))
        ));
    }

    #[test]
    fn unknown_function_is_an_error() {
        let sys = example_system();
        let parsed = parse("frobnicate(User1)").unwrap();
        assert!(matches!(
            eval_bool(&parsed, &sys, &Bindings::new()),
            Err(EvalError::UnknownFunction(_))
        ));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let sys = example_system();
        let parsed = parse("1 / 0 > 1").unwrap();
        assert!(eval_bool(&parsed, &sys, &Bindings::new()).is_err());
    }

    #[test]
    fn bindings_take_priority() {
        let sys = example_system();
        let client = sys.component_by_name("User1").unwrap();
        let mut bindings = Bindings::new();
        bindings.insert(
            "self".to_string(),
            EvalValue::Element(ElementRef::Component(client)),
        );
        let parsed = parse("self.averageLatency <= maxLatency").unwrap();
        assert!(eval_bool(&parsed, &sys, &bindings).unwrap());
    }

    #[test]
    fn pseudo_properties_name_and_type() {
        let sys = example_system();
        assert!(check("User1.name == \"User1\"", &sys));
        assert!(check("User1.type == \"ClientT\"", &sys));
        assert!(check("size(ServerGrp1.children) == 3", &sys));
    }

    #[test]
    fn attached_component_to_role() {
        let sys = example_system();
        assert!(check(
            "exists r : ClientRoleT in Conn1.roles | attached(User1, r)",
            &sys
        ));
    }

    #[test]
    fn short_circuit_avoids_errors_on_rhs() {
        let sys = example_system();
        // The right-hand side would fail (unknown identifier) but must not be
        // evaluated because the left side decides.
        assert!(check("true or nonsense > 1", &sys));
        assert!(!check("false and nonsense > 1", &sys));
    }

    #[test]
    fn value_semantics_of_eval_value() {
        assert_eq!(EvalValue::Val(Value::Bool(true)).as_bool(), Some(true));
        assert_eq!(EvalValue::Val(Value::Int(3)).as_f64(), Some(3.0));
        assert_eq!(EvalValue::Elements(vec![]).as_bool(), None);
    }
}
