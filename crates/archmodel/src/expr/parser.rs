//! Recursive-descent parser for the constraint-expression language.
//!
//! Grammar (lowest to highest precedence):
//!
//! ```text
//! expr      := implies
//! implies   := or ( '->' or )*
//! or        := and ( 'or' and )*
//! and       := not ( 'and' not )*
//! not       := ('!' | 'not') not | cmp
//! cmp       := add ( ('<' | '<=' | '>' | '>=' | '==' | '!=') add )?
//! add       := mul ( ('+' | '-') mul )*
//! mul       := unary ( ('*' | '/') unary )*
//! unary     := '-' unary | postfix
//! postfix   := primary ( '.' IDENT )*
//! primary   := NUMBER | STRING | 'true' | 'false' | quantifier
//!            | IDENT '(' args ')' | IDENT | '(' expr ')'
//! quantifier:= ('exists'|'forall'|'select') IDENT (':' IDENT)? 'in' expr '|' expr
//! ```

use super::ast::{BinOp, Expr, QuantifierKind, UnaryOp};
use super::lexer::{tokenize, LexError, Token};
use crate::value::Value;

/// A parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.to_string(),
        }
    }
}

/// Parses a constraint expression from text.
pub fn parse(input: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let expr = parser.parse_expr()?;
    if parser.pos != parser.tokens.len() {
        return Err(ParseError {
            message: format!(
                "unexpected trailing tokens starting at {:?}",
                parser.tokens[parser.pos]
            ),
        });
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, expected: &Token) -> Result<(), ParseError> {
        match self.next() {
            Some(ref t) if t == expected => Ok(()),
            other => Err(ParseError {
                message: format!("expected {expected:?}, found {other:?}"),
            }),
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_implies()
    }

    fn parse_implies(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_or()?;
        while matches!(self.peek(), Some(Token::Arrow)) {
            self.next();
            let rhs = self.parse_or()?;
            lhs = Expr::bin(BinOp::Implies, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while matches!(self.peek(), Some(Token::Or)) {
            self.next();
            let rhs = self.parse_and()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_not()?;
        while matches!(self.peek(), Some(Token::And)) {
            self.next();
            let rhs = self.parse_not()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if matches!(self.peek(), Some(Token::Bang) | Some(Token::Not)) {
            self.next();
            let inner = self.parse_not()?;
            return Ok(Expr::Unary(UnaryOp::Not, Box::new(inner)));
        }
        self.parse_cmp()
    }

    fn parse_cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            Some(Token::EqEq) => Some(BinOp::Eq),
            Some(Token::Ne) => Some(BinOp::Ne),
            _ => None,
        };
        if let Some(op) = op {
            self.next();
            let rhs = self.parse_add()?;
            return Ok(Expr::bin(op, lhs, rhs));
        }
        Ok(lhs)
    }

    fn parse_add(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.parse_mul()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.next();
            let rhs = self.parse_unary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if matches!(self.peek(), Some(Token::Minus)) {
            self.next();
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary(UnaryOp::Neg, Box::new(inner)));
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.parse_primary()?;
        while matches!(self.peek(), Some(Token::Dot)) {
            self.next();
            match self.next() {
                Some(Token::Ident(name)) => {
                    expr = Expr::Property(Box::new(expr), name);
                }
                other => {
                    return Err(ParseError {
                        message: format!("expected property name after '.', found {other:?}"),
                    })
                }
            }
        }
        Ok(expr)
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Token::Integer(v)) => Ok(Expr::Literal(Value::Int(v))),
            Some(Token::Number(v)) => Ok(Expr::Literal(Value::Float(v))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::Str(s))),
            Some(Token::True) => Ok(Expr::Literal(Value::Bool(true))),
            Some(Token::False) => Ok(Expr::Literal(Value::Bool(false))),
            Some(Token::LParen) => {
                let inner = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Some(Token::Exists) => self.parse_quantifier(QuantifierKind::Exists),
            Some(Token::Forall) => self.parse_quantifier(QuantifierKind::Forall),
            Some(Token::Select) => self.parse_quantifier(QuantifierKind::Select),
            Some(Token::Ident(name)) => {
                if matches!(self.peek(), Some(Token::LParen)) {
                    self.next();
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Some(Token::RParen)) {
                        loop {
                            args.push(self.parse_expr()?);
                            match self.peek() {
                                Some(Token::Comma) => {
                                    self.next();
                                }
                                _ => break,
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            other => Err(ParseError {
                message: format!("unexpected token: {other:?}"),
            }),
        }
    }

    fn parse_quantifier(&mut self, kind: QuantifierKind) -> Result<Expr, ParseError> {
        let var = match self.next() {
            Some(Token::Ident(name)) => name,
            other => {
                return Err(ParseError {
                    message: format!("expected binding variable, found {other:?}"),
                })
            }
        };
        let type_filter = if matches!(self.peek(), Some(Token::Colon)) {
            self.next();
            match self.next() {
                Some(Token::Ident(name)) => Some(name),
                other => {
                    return Err(ParseError {
                        message: format!("expected type name after ':', found {other:?}"),
                    })
                }
            }
        } else {
            None
        };
        self.expect(&Token::In)?;
        let domain = self.parse_postfix()?;
        self.expect(&Token::Pipe)?;
        let body = self.parse_expr()?;
        Ok(Expr::Quantifier {
            kind,
            var,
            type_filter,
            domain: Box::new(domain),
            body: Box::new(body),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_latency_invariant() {
        let e = parse("averageLatency <= maxLatency").unwrap();
        assert_eq!(
            e,
            Expr::bin(
                BinOp::Le,
                Expr::ident("averageLatency"),
                Expr::ident("maxLatency")
            )
        );
    }

    #[test]
    fn parses_property_chains() {
        let e = parse("self.role.bandwidth >= minBandwidth").unwrap();
        match e {
            Expr::Binary(BinOp::Ge, lhs, _) => {
                assert!(matches!(*lhs, Expr::Property(_, ref n) if n == "bandwidth"));
            }
            _ => panic!("unexpected"),
        }
    }

    #[test]
    fn parses_quantifier_with_type_filter() {
        let e = parse(
            "exists sgrp : ServerGroupT in components | connected(sgrp, client) and sgrp.load > maxServerLoad",
        )
        .unwrap();
        match e {
            Expr::Quantifier {
                kind: QuantifierKind::Exists,
                var,
                type_filter,
                ..
            } => {
                assert_eq!(var, "sgrp");
                assert_eq!(type_filter.as_deref(), Some("ServerGroupT"));
            }
            _ => panic!("expected quantifier"),
        }
    }

    #[test]
    fn parses_forall_over_nested_domain() {
        let e = parse("forall s in grp.children | s.isActive").unwrap();
        match e {
            Expr::Quantifier {
                kind: QuantifierKind::Forall,
                domain,
                ..
            } => {
                assert!(matches!(*domain, Expr::Property(_, ref n) if n == "children"));
            }
            _ => panic!("expected quantifier"),
        }
    }

    #[test]
    fn parses_select_returning_set() {
        let e = parse("size(select s : ServerT in components | s.isActive) >= 1").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Ge, _, _)));
    }

    #[test]
    fn precedence_and_over_or() {
        let e = parse("a or b and c").unwrap();
        // Must parse as a or (b and c).
        match e {
            Expr::Binary(BinOp::Or, lhs, rhs) => {
                assert!(matches!(*lhs, Expr::Ident(_)));
                assert!(matches!(*rhs, Expr::Binary(BinOp::And, _, _)));
            }
            _ => panic!("unexpected"),
        }
    }

    #[test]
    fn precedence_arithmetic() {
        let e = parse("1 + 2 * 3 == 7").unwrap();
        match e {
            Expr::Binary(BinOp::Eq, lhs, _) => match *lhs {
                Expr::Binary(BinOp::Add, _, rhs) => {
                    assert!(matches!(*rhs, Expr::Binary(BinOp::Mul, _, _)));
                }
                _ => panic!("expected add at top of lhs"),
            },
            _ => panic!("unexpected"),
        }
    }

    #[test]
    fn parses_not_and_negation() {
        assert!(matches!(
            parse("!overloaded").unwrap(),
            Expr::Unary(UnaryOp::Not, _)
        ));
        assert!(matches!(
            parse("not overloaded").unwrap(),
            Expr::Unary(UnaryOp::Not, _)
        ));
        assert!(matches!(
            parse("-3 < 0").unwrap(),
            Expr::Binary(BinOp::Lt, _, _)
        ));
    }

    #[test]
    fn parses_implication() {
        let e = parse("overloaded -> load > 6").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Implies, _, _)));
    }

    #[test]
    fn parses_calls_with_no_args() {
        let e = parse("size(components) == 0 or isEmpty()").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Or, _, _)));
    }

    #[test]
    fn rejects_trailing_tokens() {
        assert!(parse("a b").is_err());
    }

    #[test]
    fn rejects_missing_rparen() {
        assert!(parse("size(components == 0").is_err());
    }

    #[test]
    fn rejects_missing_quantifier_body() {
        assert!(parse("exists c in components").is_err());
    }

    #[test]
    fn parses_parenthesised_expressions() {
        let e = parse("(1 + 2) * 3").unwrap();
        match e {
            Expr::Binary(BinOp::Mul, lhs, _) => {
                assert!(matches!(*lhs, Expr::Binary(BinOp::Add, _, _)));
            }
            _ => panic!("unexpected"),
        }
    }
}
