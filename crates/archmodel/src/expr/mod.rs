//! The constraint-expression language (lexer, parser, evaluator).
//!
//! Constraints are written in a small Armani-like textual language and
//! evaluated dynamically against the runtime architectural model, exactly as
//! the paper's AcmeLib checks its threshold constraints (e.g. `average
//! latency < maxLatency`) while the system runs.

pub mod ast;
pub mod eval;
pub mod lexer;
pub mod parser;

pub use ast::{BinOp, Expr, PropertyReadSet, QuantifierKind, UnaryOp};
pub use eval::{eval, eval_bool, Bindings, EvalError, EvalValue};
pub use lexer::{tokenize, LexError, Token};
pub use parser::{parse, ParseError};
