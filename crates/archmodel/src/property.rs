//! Property lists attached to architectural elements.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A named collection of property values.
///
/// Backed by a `BTreeMap` so iteration (and therefore constraint evaluation
/// and model diffing) is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PropertyMap {
    entries: BTreeMap<String, Value>,
}

impl PropertyMap {
    /// Creates an empty property map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets (or replaces) a property.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Value>) {
        self.entries.insert(name.into(), value.into());
    }

    /// Builder-style property setting.
    pub fn with(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.set(name, value);
        self
    }

    /// Gets a property by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.entries.get(name)
    }

    /// Gets a numeric property, coercing ints to floats.
    pub fn get_f64(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(Value::as_f64)
    }

    /// Gets an integer property.
    pub fn get_i64(&self, name: &str) -> Option<i64> {
        self.get(name).and_then(Value::as_i64)
    }

    /// Gets a boolean property.
    pub fn get_bool(&self, name: &str) -> Option<bool> {
        self.get(name).and_then(Value::as_bool)
    }

    /// Gets a string property.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(Value::as_str)
    }

    /// Removes a property, returning its previous value.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        self.entries.remove(name)
    }

    /// Whether a property is present.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no properties are set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over (name, value) pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Names of properties present here but missing or different in `other`.
    pub fn diff(&self, other: &PropertyMap) -> Vec<String> {
        self.entries
            .iter()
            .filter(|(k, v)| other.get(k) != Some(*v))
            .map(|(k, _)| k.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut props = PropertyMap::new();
        props.set("averageLatency", 1.5);
        props.set("load", 7i64);
        props.set("isActive", true);
        props.set("host", "S1");
        assert_eq!(props.get_f64("averageLatency"), Some(1.5));
        assert_eq!(props.get_i64("load"), Some(7));
        assert_eq!(props.get_bool("isActive"), Some(true));
        assert_eq!(props.get_str("host"), Some("S1"));
        assert_eq!(props.len(), 4);
    }

    #[test]
    fn int_coerces_to_float() {
        let props = PropertyMap::new().with("load", 7i64);
        assert_eq!(props.get_f64("load"), Some(7.0));
    }

    #[test]
    fn missing_property_is_none() {
        let props = PropertyMap::new();
        assert!(props.get("nothing").is_none());
        assert!(!props.contains("nothing"));
        assert!(props.is_empty());
    }

    #[test]
    fn overwrite_replaces_value() {
        let mut props = PropertyMap::new();
        props.set("bandwidth", 10.0e6);
        props.set("bandwidth", 5.0e6);
        assert_eq!(props.get_f64("bandwidth"), Some(5.0e6));
        assert_eq!(props.len(), 1);
    }

    #[test]
    fn remove_returns_previous() {
        let mut props = PropertyMap::new().with("x", 1i64);
        assert_eq!(props.remove("x"), Some(Value::Int(1)));
        assert_eq!(props.remove("x"), None);
    }

    #[test]
    fn diff_reports_changed_and_missing() {
        let a = PropertyMap::new().with("x", 1i64).with("y", 2i64);
        let b = PropertyMap::new().with("x", 1i64).with("y", 3i64);
        assert_eq!(a.diff(&b), vec!["y".to_string()]);
        let empty = PropertyMap::new();
        let mut d = a.diff(&empty);
        d.sort();
        assert_eq!(d, vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let props = PropertyMap::new()
            .with("b", 1i64)
            .with("a", 2i64)
            .with("c", 3i64);
        let names: Vec<&str> = props.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
