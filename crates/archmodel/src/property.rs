//! Property lists attached to architectural elements.

use crate::key::Key;
use crate::value::Value;
use serde::{Content, Deserialize, Serialize};

/// A named collection of property values.
///
/// Keys are interned [`Key`]s and entries are kept sorted by name, so
/// iteration (and therefore constraint evaluation and model diffing) is
/// deterministic and identical to the previous `BTreeMap<String, _>`
/// representation — while `set` with a pre-interned key does no string
/// hashing or cloning, and `get` by `&str` is a binary search that never
/// touches the interner. Property lists are small (a handful of entries), so
/// the sorted-vector layout also beats a tree on every operation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PropertyMap {
    entries: Vec<(Key, Value)>,
}

impl Serialize for PropertyMap {
    // Matches the shape the derived impl produced for the previous
    // `BTreeMap<String, Value>`-backed struct: a single `entries` map with
    // keys in name order.
    fn to_content(&self) -> Content {
        let map = self
            .entries
            .iter()
            .map(|(k, v)| (k.as_str().to_string(), v.to_content()))
            .collect();
        Content::Map(vec![("entries".to_string(), Content::Map(map))])
    }
}

impl Deserialize for PropertyMap {}

impl PropertyMap {
    /// Creates an empty property map.
    pub fn new() -> Self {
        Self::default()
    }

    fn position(&self, name: &str) -> Result<usize, usize> {
        self.entries.binary_search_by(|(k, _)| k.as_str().cmp(name))
    }

    /// Sets (or replaces) a property.
    pub fn set(&mut self, name: impl Into<Key>, value: impl Into<Value>) {
        let key = name.into();
        match self.position(key.as_str()) {
            Ok(idx) => self.entries[idx].1 = value.into(),
            Err(idx) => self.entries.insert(idx, (key, value.into())),
        }
    }

    /// Builder-style property setting.
    pub fn with(mut self, name: impl Into<Key>, value: impl Into<Value>) -> Self {
        self.set(name, value);
        self
    }

    /// Gets a property by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.position(name).ok().map(|idx| &self.entries[idx].1)
    }

    /// Gets a numeric property, coercing ints to floats.
    pub fn get_f64(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(Value::as_f64)
    }

    /// Gets an integer property.
    pub fn get_i64(&self, name: &str) -> Option<i64> {
        self.get(name).and_then(Value::as_i64)
    }

    /// Gets a boolean property.
    pub fn get_bool(&self, name: &str) -> Option<bool> {
        self.get(name).and_then(Value::as_bool)
    }

    /// Gets a string property.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(Value::as_str)
    }

    /// Removes a property, returning its previous value.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        self.position(name)
            .ok()
            .map(|idx| self.entries.remove(idx).1)
    }

    /// Whether a property is present.
    pub fn contains(&self, name: &str) -> bool {
        self.position(name).is_ok()
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no properties are set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over (name, value) pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Names of properties present here but missing or different in `other`.
    pub fn diff(&self, other: &PropertyMap) -> Vec<String> {
        self.entries
            .iter()
            .filter(|(k, v)| other.get(k.as_str()) != Some(v))
            .map(|(k, _)| k.as_str().to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut props = PropertyMap::new();
        props.set("averageLatency", 1.5);
        props.set("load", 7i64);
        props.set("isActive", true);
        props.set("host", "S1");
        assert_eq!(props.get_f64("averageLatency"), Some(1.5));
        assert_eq!(props.get_i64("load"), Some(7));
        assert_eq!(props.get_bool("isActive"), Some(true));
        assert_eq!(props.get_str("host"), Some("S1"));
        assert_eq!(props.len(), 4);
    }

    #[test]
    fn int_coerces_to_float() {
        let props = PropertyMap::new().with("load", 7i64);
        assert_eq!(props.get_f64("load"), Some(7.0));
    }

    #[test]
    fn missing_property_is_none() {
        let props = PropertyMap::new();
        assert!(props.get("nothing").is_none());
        assert!(!props.contains("nothing"));
        assert!(props.is_empty());
    }

    #[test]
    fn overwrite_replaces_value() {
        let mut props = PropertyMap::new();
        props.set("bandwidth", 10.0e6);
        props.set("bandwidth", 5.0e6);
        assert_eq!(props.get_f64("bandwidth"), Some(5.0e6));
        assert_eq!(props.len(), 1);
    }

    #[test]
    fn remove_returns_previous() {
        let mut props = PropertyMap::new().with("x", 1i64);
        assert_eq!(props.remove("x"), Some(Value::Int(1)));
        assert_eq!(props.remove("x"), None);
    }

    #[test]
    fn diff_reports_changed_and_missing() {
        let a = PropertyMap::new().with("x", 1i64).with("y", 2i64);
        let b = PropertyMap::new().with("x", 1i64).with("y", 3i64);
        assert_eq!(a.diff(&b), vec!["y".to_string()]);
        let empty = PropertyMap::new();
        let mut d = a.diff(&empty);
        d.sort();
        assert_eq!(d, vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let props = PropertyMap::new()
            .with("b", 1i64)
            .with("a", 2i64)
            .with("c", 3i64);
        let names: Vec<&str> = props.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn interned_keys_are_reusable_handles() {
        let latency = Key::new("averageLatency");
        let mut props = PropertyMap::new();
        props.set(latency, 1.0);
        props.set(latency, 2.0);
        assert_eq!(props.get_f64(latency.as_str()), Some(2.0));
        assert_eq!(props.len(), 1);
    }

    #[test]
    fn serialization_shape_matches_the_map_layout() {
        let props = PropertyMap::new().with("b", 2i64).with("a", 1i64);
        match serde::Serialize::to_content(&props) {
            serde::Content::Map(fields) => {
                assert_eq!(fields.len(), 1);
                assert_eq!(fields[0].0, "entries");
                match &fields[0].1 {
                    serde::Content::Map(entries) => {
                        let names: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
                        assert_eq!(names, vec!["a", "b"]);
                    }
                    other => panic!("unexpected entries content: {other:?}"),
                }
            }
            other => panic!("unexpected content: {other:?}"),
        }
    }
}
