//! Architectural elements: components, connectors, ports, roles, attachments.
//!
//! The model follows the core representation scheme shared by Acme, xADL and
//! SADL (§2): a system is a graph whose nodes are *components* (computational
//! elements and data stores) and whose arcs are *connectors* (pathways of
//! interaction). Components expose *ports*; connectors expose *roles*;
//! *attachments* bind ports to roles. Hierarchy (a server group's
//! representation containing its replicated servers) is expressed through
//! parent/child links between components.

use crate::property::PropertyMap;
use serde::{Deserialize, Serialize};

/// Identifies a component within a [`crate::system::System`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ComponentId(pub u32);

/// Identifies a connector within a system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConnectorId(pub u32);

/// Identifies a port on a component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PortId(pub u32);

/// Identifies a role on a connector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RoleId(pub u32);

/// A reference to any kind of element, used by constraints and violations.
///
/// Ordered (components before connectors before ports before roles, ids
/// ascending within a kind) so dirty-set iteration in the change journal is
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ElementRef {
    /// A component.
    Component(ComponentId),
    /// A connector.
    Connector(ConnectorId),
    /// A port.
    Port(PortId),
    /// A role.
    Role(RoleId),
}

/// A principal computational element or data store (client, server group,
/// server, request queue, ...).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// Unique name within the system, e.g. `"ServerGrp1"`.
    pub name: String,
    /// The component type in the architectural style, e.g. `"ServerGroupT"`.
    pub ctype: String,
    /// Behavioural/performance annotations.
    pub properties: PropertyMap,
    /// Ports owned by this component.
    pub ports: Vec<PortId>,
    /// Enclosing component when this component is part of a representation
    /// (e.g. a server inside its server group).
    pub parent: Option<ComponentId>,
    /// Components contained in this component's representation.
    pub children: Vec<ComponentId>,
}

/// A pathway of interaction between components (e.g. the request queue plus
/// the network connections between users and servers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Connector {
    /// Unique name within the system.
    pub name: String,
    /// The connector type in the architectural style, e.g. `"ServiceConnT"`.
    pub ctype: String,
    /// Behavioural/performance annotations (delay, bandwidth, ...).
    pub properties: PropertyMap,
    /// Roles owned by this connector.
    pub roles: Vec<RoleId>,
}

/// A point of interaction on a component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Port {
    /// Name unique within the owning component.
    pub name: String,
    /// The port type, e.g. `"RequestT"`.
    pub ptype: String,
    /// Annotations.
    pub properties: PropertyMap,
    /// The component this port belongs to.
    pub owner: ComponentId,
}

/// A point of interaction on a connector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Role {
    /// Name unique within the owning connector.
    pub name: String,
    /// The role type, e.g. `"ClientRoleT"`.
    pub rtype: String,
    /// Annotations (e.g. `bandwidth` between the client and its group).
    pub properties: PropertyMap,
    /// The connector this role belongs to.
    pub owner: ConnectorId,
}

/// Binds a component's port to a connector's role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Attachment {
    /// The component-side port.
    pub port: PortId,
    /// The connector-side role.
    pub role: RoleId,
}

impl std::fmt::Display for ElementRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElementRef::Component(id) => write!(f, "component#{}", id.0),
            ElementRef::Connector(id) => write!(f, "connector#{}", id.0),
            ElementRef::Port(id) => write!(f, "port#{}", id.0),
            ElementRef::Role(id) => write!(f, "role#{}", id.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_ref_display() {
        assert_eq!(
            ElementRef::Component(ComponentId(3)).to_string(),
            "component#3"
        );
        assert_eq!(ElementRef::Role(RoleId(1)).to_string(), "role#1");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let set: BTreeSet<ComponentId> = [ComponentId(2), ComponentId(1)].into_iter().collect();
        assert_eq!(set.iter().next(), Some(&ComponentId(1)));
    }
}
