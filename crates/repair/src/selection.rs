//! Violation-selection policies.
//!
//! The paper's experiment *simply chose to repair the first client that
//! reported an error*; §7 proposes smarter approaches such as fixing the
//! client experiencing the worst latency first. Both policies are provided so
//! the ablation benches can compare them.

use archmodel::constraint::Violation;
use archmodel::style::props;
use archmodel::{ElementRef, System};
use serde::{Deserialize, Serialize};

/// Which violation to repair first when several are outstanding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// Repair the first violation reported (the paper's experiment).
    FirstReported,
    /// Repair the client experiencing the worst latency first (§7).
    WorstLatency,
}

fn latency_of(violation: &Violation, model: &System) -> f64 {
    let Some(ElementRef::Component(id)) = violation.subject else {
        return f64::NEG_INFINITY;
    };
    model
        .component(id)
        .ok()
        .and_then(|c| c.properties.get_f64(props::AVERAGE_LATENCY))
        .unwrap_or(f64::NEG_INFINITY)
}

/// Selects the violation to repair under the given policy.
pub fn select_violation<'a>(
    policy: SelectionPolicy,
    violations: &'a [Violation],
    model: &System,
) -> Option<&'a Violation> {
    match policy {
        SelectionPolicy::FirstReported => violations.first(),
        SelectionPolicy::WorstLatency => violations.iter().max_by(|a, b| {
            latency_of(a, model)
                .partial_cmp(&latency_of(b, model))
                .expect("latencies are not NaN")
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archmodel::style::ClientServerStyle;

    fn model_and_violations() -> (System, Vec<Violation>) {
        let mut model = ClientServerStyle::example_system("s", 1, 1, 3).unwrap();
        for (name, latency) in [("User1", 3.0), ("User2", 9.0), ("User3", 5.0)] {
            let id = model.component_by_name(name).unwrap();
            model
                .component_mut(id)
                .unwrap()
                .properties
                .set(props::AVERAGE_LATENCY, latency);
        }
        let violations: Vec<Violation> = ["User1", "User2", "User3"]
            .iter()
            .map(|name| Violation {
                invariant: "latency".into(),
                subject: Some(ElementRef::Component(
                    model.component_by_name(name).unwrap(),
                )),
                subject_name: name.to_string(),
                detail: String::new(),
            })
            .collect();
        (model, violations)
    }

    #[test]
    fn first_reported_takes_the_first() {
        let (model, violations) = model_and_violations();
        let chosen = select_violation(SelectionPolicy::FirstReported, &violations, &model).unwrap();
        assert_eq!(chosen.subject_name, "User1");
    }

    #[test]
    fn worst_latency_takes_the_slowest_client() {
        let (model, violations) = model_and_violations();
        let chosen = select_violation(SelectionPolicy::WorstLatency, &violations, &model).unwrap();
        assert_eq!(chosen.subject_name, "User2");
    }

    #[test]
    fn empty_violations_select_nothing() {
        let (model, _) = model_and_violations();
        assert!(select_violation(SelectionPolicy::FirstReported, &[], &model).is_none());
        assert!(select_violation(SelectionPolicy::WorstLatency, &[], &model).is_none());
    }

    #[test]
    fn violations_without_latency_fall_back_gracefully() {
        let (model, mut violations) = model_and_violations();
        violations.push(Violation {
            invariant: "serverLoad".into(),
            subject: None,
            subject_name: "storage".into(),
            detail: String::new(),
        });
        let chosen = select_violation(SelectionPolicy::WorstLatency, &violations, &model).unwrap();
        assert_eq!(chosen.subject_name, "User2");
    }
}
