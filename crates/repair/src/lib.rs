//! # repair — repair strategies, tactics, and adaptation operators
//!
//! When the architecture manager detects a constraint violation it triggers
//! the associated *repair strategy* (§3.2). A strategy is a sequence of
//! *tactics*; each tactic is guarded by a precondition over the architectural
//! model and, when applicable, executes a repair script written with the
//! style-specific *adaptation operators* (§3.3): `addServer`, `move`,
//! `remove`, and the runtime query `findGoodSGroup`.
//!
//! * [`operators`] — the client/server-style operators over transactional
//!   change-sets,
//! * [`tactic`] / [`strategy`] — guarded tactics and strategy policies with
//!   commit/abort semantics and style validation,
//! * [`builtin`] — the paper's `fixLatency` strategy (Figure 5) plus the
//!   `reduceServers` cost repair and the default constraint set,
//! * [`engine`] — mapping violations to plans, with violation-selection
//!   policies ([`selection`]) and oscillation [`damping`] (§5.3/§7),
//! * [`query`] — the runtime-layer queries tactics rely on.

#![warn(missing_docs)]

pub mod builtin;
pub mod damping;
pub mod engine;
pub mod operators;
pub mod query;
pub mod selection;
pub mod strategy;
pub mod tactic;

pub use builtin::{
    default_constraints, failover_server_group_strategy, fix_latency_strategy,
    recover_liveness_strategy, reroute_clients_strategy, strategy_for_invariant,
    FailoverServerGroupTactic, FixBandwidthTactic, FixServerLoadTactic, ReduceServersTactic,
    RerouteClientsTactic, DEFAULT_MAX_LATENCY_SECS, DEFAULT_MAX_SERVER_LOAD,
    DEFAULT_MIN_BANDWIDTH_BPS,
};
pub use damping::RepairDamping;
pub use engine::{PlanOutcome, RepairEngine, RepairPlan};
pub use operators::{add_server, move_client, remove_server, OperatorError};
pub use query::{RuntimeQuery, StaticQuery};
pub use selection::{select_violation, SelectionPolicy};
pub use strategy::{RepairStrategy, StrategyOutcome, TacticPolicy};
pub use tactic::{client_of_violation, RepairError, Tactic, TacticContext, TacticResult};
