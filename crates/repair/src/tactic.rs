//! Repair tactics: guarded repair steps.
//!
//! A repair strategy is a sequence of *tactics*; each tactic is guarded by a
//! precondition that examines the architectural model to pinpoint the problem
//! and decide applicability, and — if applicable — executes a repair script
//! written with the style-specific operators (§3.2).

use crate::query::RuntimeQuery;
use archmodel::constraint::Violation;
use archmodel::style::StyleViolation;
use archmodel::{ChangeError, ModelError, ModelOp, System};

/// Errors that abort a repair.
#[derive(Debug, Clone, PartialEq)]
pub enum RepairError {
    /// An adaptation operator failed.
    Operator(String),
    /// A model change could not be applied.
    Change(ChangeError),
    /// The model itself is inconsistent with the violation being repaired.
    Model(ModelError),
    /// `findGoodSGroup` found no server group with acceptable bandwidth —
    /// the paper's `abort NoServerGroupFound`.
    NoServerGroupFound,
    /// The repaired model would violate the architectural style.
    StyleViolations(Vec<StyleViolation>),
}

impl From<ChangeError> for RepairError {
    fn from(e: ChangeError) -> Self {
        RepairError::Change(e)
    }
}

impl From<ModelError> for RepairError {
    fn from(e: ModelError) -> Self {
        RepairError::Model(e)
    }
}

impl From<crate::operators::OperatorError> for RepairError {
    fn from(e: crate::operators::OperatorError) -> Self {
        RepairError::Operator(e.to_string())
    }
}

impl std::fmt::Display for RepairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairError::Operator(m) => write!(f, "operator failed: {m}"),
            RepairError::Change(e) => write!(f, "change failed: {e}"),
            RepairError::Model(e) => write!(f, "model error: {e}"),
            RepairError::NoServerGroupFound => write!(f, "no server group found"),
            RepairError::StyleViolations(v) => {
                write!(f, "repair would break the style ({} violations)", v.len())
            }
        }
    }
}

impl std::error::Error for RepairError {}

/// Everything a tactic may consult while deciding and acting.
pub struct TacticContext<'a> {
    /// The current architectural model.
    pub model: &'a System,
    /// The constraint violation that triggered the enclosing strategy.
    pub violation: &'a Violation,
    /// Queries answered by the runtime layer (predicted bandwidth, spare
    /// servers).
    pub query: &'a dyn RuntimeQuery,
}

/// The outcome of attempting one tactic.
#[derive(Debug, Clone, PartialEq)]
pub enum TacticResult {
    /// The tactic's precondition did not hold.
    NotApplicable {
        /// Why the precondition failed (for the trace).
        reason: String,
    },
    /// The tactic produced a repair script.
    Applied {
        /// The model operations making up the repair script.
        ops: Vec<ModelOp>,
        /// Human-readable description of what the repair does.
        description: String,
    },
}

/// A guarded repair step.
pub trait Tactic {
    /// The tactic's name (e.g. `"fixServerLoad"`).
    fn name(&self) -> &str;

    /// Evaluates the precondition and, if it holds, produces the repair
    /// script.
    fn attempt(&self, ctx: &TacticContext<'_>) -> Result<TacticResult, RepairError>;
}

/// Resolves the client component a violation refers to: either the violation
/// subject itself (latency constraints are scoped per client) or the client
/// attached to the violated role (bandwidth constraints are scoped per role).
pub fn client_of_violation(model: &System, violation: &Violation) -> Option<String> {
    use archmodel::ElementRef;
    match violation.subject? {
        ElementRef::Component(id) => {
            let comp = model.component(id).ok()?;
            if comp.ctype == archmodel::style::CLIENT_T {
                Some(comp.name.clone())
            } else {
                None
            }
        }
        ElementRef::Role(id) => {
            let client_id = model.component_attached_to_role(id)?;
            let comp = model.component(client_id).ok()?;
            (comp.ctype == archmodel::style::CLIENT_T).then(|| comp.name.clone())
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archmodel::style::ClientServerStyle;
    use archmodel::ElementRef;

    #[test]
    fn client_resolution_from_component_subject() {
        let model = ClientServerStyle::example_system("s", 1, 1, 2).unwrap();
        let id = model.component_by_name("User2").unwrap();
        let violation = Violation {
            invariant: "latency".into(),
            subject: Some(ElementRef::Component(id)),
            subject_name: "User2".into(),
            detail: String::new(),
        };
        assert_eq!(
            client_of_violation(&model, &violation),
            Some("User2".to_string())
        );
    }

    #[test]
    fn client_resolution_from_role_subject() {
        let model = ClientServerStyle::example_system("s", 1, 1, 1).unwrap();
        // Find User1's role.
        let client = model.component_by_name("User1").unwrap();
        let role = model.roles_of_component(client)[0];
        let violation = Violation {
            invariant: "bandwidth".into(),
            subject: Some(ElementRef::Role(role)),
            subject_name: "User1.role".into(),
            detail: String::new(),
        };
        assert_eq!(
            client_of_violation(&model, &violation),
            Some("User1".to_string())
        );
    }

    #[test]
    fn non_client_subject_resolves_to_none() {
        let model = ClientServerStyle::example_system("s", 1, 1, 1).unwrap();
        let grp = model.component_by_name("ServerGrp1").unwrap();
        let violation = Violation {
            invariant: "load".into(),
            subject: Some(ElementRef::Component(grp)),
            subject_name: "ServerGrp1".into(),
            detail: String::new(),
        };
        assert_eq!(client_of_violation(&model, &violation), None);
    }

    #[test]
    fn error_display_is_informative() {
        assert!(RepairError::NoServerGroupFound
            .to_string()
            .contains("no server group"));
        assert!(RepairError::Operator("boom".into())
            .to_string()
            .contains("boom"));
    }
}
