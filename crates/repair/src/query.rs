//! Queries against the *running system* used by repair tactics.
//!
//! Besides operators that change the architectural model, the paper's repair
//! framework needs queries answered by the runtime layer — most importantly
//! `findGoodSGroup(cl, bw)`, which *finds the server group with the best
//! bandwidth (above `bw`) to the client*, and `findServer`, which locates a
//! spare server that can be activated. These are answered by the environment
//! manager over Remos in the paper; in the reproduction the adaptation
//! framework implements this trait over the simulated network.

/// Runtime-layer queries available to repair tactics.
pub trait RuntimeQuery {
    /// Finds the server group with the best predicted bandwidth to `client`,
    /// provided that bandwidth exceeds `min_bandwidth_bps`. Mirrors the
    /// paper's `findGoodSGroup(cl : ClientT, bw : float)`.
    fn find_good_server_group(&self, client: &str, min_bandwidth_bps: f64) -> Option<String>;

    /// Predicted bandwidth between a client and a server group, mirroring
    /// `remos_get_flow`.
    fn predicted_bandwidth(&self, client: &str, group: &str) -> Option<f64>;

    /// Finds a spare (inactive) server that could be activated for `group`,
    /// mirroring `findServer([cli_ip, bw_thresh])`. Returns the spare
    /// server's name.
    fn find_spare_server(&self, group: &str) -> Option<String>;

    /// How many spare servers could be recruited for `group` right now. The
    /// failover tactic uses this to size its replacement batch; the default
    /// implementation only knows whether *one* spare exists.
    fn spare_server_count(&self, group: &str) -> usize {
        usize::from(self.find_spare_server(group).is_some())
    }
}

/// A scripted [`RuntimeQuery`] used by tests and by model-only experiments:
/// answers come from fixed tables instead of a live network.
#[derive(Debug, Clone, Default)]
pub struct StaticQuery {
    /// `(client, group)` → predicted bandwidth in bps.
    pub bandwidth: Vec<((String, String), f64)>,
    /// group → spare server names available for activation.
    pub spares: Vec<(String, Vec<String>)>,
}

impl StaticQuery {
    /// Creates an empty table (no bandwidth information, no spares).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a predicted bandwidth for a client/group pair.
    pub fn with_bandwidth(mut self, client: &str, group: &str, bps: f64) -> Self {
        self.bandwidth
            .push(((client.to_string(), group.to_string()), bps));
        self
    }

    /// Records spare servers for a group.
    pub fn with_spares(mut self, group: &str, spares: &[&str]) -> Self {
        self.spares.push((
            group.to_string(),
            spares.iter().map(|s| s.to_string()).collect(),
        ));
        self
    }
}

impl RuntimeQuery for StaticQuery {
    fn find_good_server_group(&self, client: &str, min_bandwidth_bps: f64) -> Option<String> {
        self.bandwidth
            .iter()
            .filter(|((c, _), bps)| c == client && *bps > min_bandwidth_bps)
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("bandwidth is not NaN"))
            .map(|((_, g), _)| g.clone())
    }

    fn predicted_bandwidth(&self, client: &str, group: &str) -> Option<f64> {
        self.bandwidth
            .iter()
            .find(|((c, g), _)| c == client && g == group)
            .map(|(_, bps)| *bps)
    }

    fn find_spare_server(&self, group: &str) -> Option<String> {
        self.spares
            .iter()
            .find(|(g, _)| g == group)
            .and_then(|(_, list)| list.first().cloned())
    }

    fn spare_server_count(&self, group: &str) -> usize {
        self.spares
            .iter()
            .find(|(g, _)| g == group)
            .map_or(0, |(_, list)| list.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_group_above_threshold() {
        let q = StaticQuery::new()
            .with_bandwidth("User3", "ServerGrp1", 5_000.0)
            .with_bandwidth("User3", "ServerGrp2", 2_000_000.0)
            .with_bandwidth("User3", "ServerGrp3", 500_000.0);
        assert_eq!(
            q.find_good_server_group("User3", 10_000.0),
            Some("ServerGrp2".to_string())
        );
        // Nothing exceeds an absurd threshold.
        assert_eq!(q.find_good_server_group("User3", 1e9), None);
        // Unknown client.
        assert_eq!(q.find_good_server_group("User9", 10.0), None);
    }

    #[test]
    fn predicted_bandwidth_lookup() {
        let q = StaticQuery::new().with_bandwidth("User1", "ServerGrp1", 9e6);
        assert_eq!(q.predicted_bandwidth("User1", "ServerGrp1"), Some(9e6));
        assert_eq!(q.predicted_bandwidth("User1", "ServerGrp2"), None);
    }

    #[test]
    fn spare_servers() {
        let q = StaticQuery::new().with_spares("ServerGrp1", &["S4", "S7"]);
        assert_eq!(q.find_spare_server("ServerGrp1"), Some("S4".to_string()));
        assert_eq!(q.find_spare_server("ServerGrp2"), None);
        assert_eq!(q.spare_server_count("ServerGrp1"), 2);
        assert_eq!(q.spare_server_count("ServerGrp2"), 0);
    }

    /// A query type relying on the trait's default `spare_server_count`.
    struct OneSpare;
    impl RuntimeQuery for OneSpare {
        fn find_good_server_group(&self, _: &str, _: f64) -> Option<String> {
            None
        }
        fn predicted_bandwidth(&self, _: &str, _: &str) -> Option<f64> {
            None
        }
        fn find_spare_server(&self, _: &str) -> Option<String> {
            Some("S4".into())
        }
    }

    #[test]
    fn default_spare_count_reflects_single_lookup() {
        assert_eq!(OneSpare.spare_server_count("any"), 1);
    }
}
