//! Repair-effect damping.
//!
//! The paper observes (§5.3) that *the effects of a repair on a system will
//! take time* — adding a server does not immediately reduce the group's load —
//! and that ignoring this leads to unnecessary repairs and oscillation
//! (clients bouncing between server groups). The proposed remedy is a repair
//! engine that monitors repairs and their effects. [`RepairDamping`]
//! implements the simplest form: after a repair touches a subject, further
//! repairs for that subject are suppressed until a settle time has elapsed.

use std::collections::HashMap;

/// Tracks recent repairs and suppresses premature re-repairs.
#[derive(Debug, Clone)]
pub struct RepairDamping {
    settle_secs: f64,
    last_repair: HashMap<String, f64>,
}

impl RepairDamping {
    /// Creates a damping policy with the given settle time (seconds).
    pub fn new(settle_secs: f64) -> Self {
        RepairDamping {
            settle_secs: settle_secs.max(0.0),
            last_repair: HashMap::new(),
        }
    }

    /// The settle time.
    pub fn settle_secs(&self) -> f64 {
        self.settle_secs
    }

    /// Records that a repair affecting `subject` completed at `now`.
    pub fn record(&mut self, subject: &str, now: f64) {
        self.last_repair.insert(subject.to_string(), now);
    }

    /// True when a repair for `subject` is allowed at `now` (no repair within
    /// the settle window).
    pub fn allows(&self, subject: &str, now: f64) -> bool {
        match self.last_repair.get(subject) {
            Some(&last) => now - last >= self.settle_secs,
            None => true,
        }
    }

    /// Time remaining before a repair for `subject` is allowed again.
    pub fn remaining(&self, subject: &str, now: f64) -> f64 {
        match self.last_repair.get(subject) {
            Some(&last) => (self.settle_secs - (now - last)).max(0.0),
            None => 0.0,
        }
    }

    /// Forgets all recorded repairs.
    pub fn clear(&mut self) {
        self.last_repair.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allows_until_first_repair() {
        let damping = RepairDamping::new(60.0);
        assert!(damping.allows("User3", 0.0));
        assert_eq!(damping.remaining("User3", 0.0), 0.0);
    }

    #[test]
    fn suppresses_within_settle_window() {
        let mut damping = RepairDamping::new(60.0);
        damping.record("User3", 100.0);
        assert!(!damping.allows("User3", 130.0));
        assert!((damping.remaining("User3", 130.0) - 30.0).abs() < 1e-12);
        assert!(damping.allows("User3", 160.0));
        // Other subjects are unaffected.
        assert!(damping.allows("User4", 130.0));
    }

    #[test]
    fn zero_settle_never_suppresses() {
        let mut damping = RepairDamping::new(0.0);
        damping.record("User3", 100.0);
        assert!(damping.allows("User3", 100.0));
    }

    #[test]
    fn clear_forgets_history() {
        let mut damping = RepairDamping::new(60.0);
        damping.record("User3", 100.0);
        damping.clear();
        assert!(damping.allows("User3", 101.0));
    }

    #[test]
    fn negative_settle_clamped() {
        let damping = RepairDamping::new(-5.0);
        assert_eq!(damping.settle_secs(), 0.0);
    }
}
