//! The paper's repair strategies and tactics (Figure 5).
//!
//! The latency invariant `averageLatency <= maxLatency` triggers the
//! `fixLatency` strategy, which consists of two tactics:
//!
//! * `fixServerLoad` — if the client's server group is overloaded (queue
//!   length above `maxServerLoad`), add a server to every overloaded group;
//! * `fixBandwidth` — if the client's connection bandwidth has dropped below
//!   `minBandwidth`, move the client to the server group with the best
//!   bandwidth (`findGoodSGrp`), aborting with `NoServerGroupFound` if none
//!   qualifies.
//!
//! A third repair (mentioned but not shown in the paper) reduces the number
//! of servers in an underutilised group: `reduceServers`.

use crate::operators::{add_server, move_client, remove_server};
use crate::query::RuntimeQuery;
use crate::strategy::{RepairStrategy, TacticPolicy};
use crate::tactic::{client_of_violation, RepairError, Tactic, TacticContext, TacticResult};
use archmodel::constraint::{ConstraintScope, ConstraintSet, Invariant};
use archmodel::style::{props, ClientServerStyle, CLIENT_ROLE_T, CLIENT_T, SERVER_GROUP_T};
use archmodel::{System, Transaction};

/// Default threshold for server-group load (pending requests). The paper: a
/// queue of more than six waiting requests indicates overload.
pub const DEFAULT_MAX_SERVER_LOAD: f64 = 6.0;
/// Default minimum acceptable client bandwidth. The paper: 10 Kbps.
pub const DEFAULT_MIN_BANDWIDTH_BPS: f64 = 10_000.0;
/// Default latency bound. The paper: 2 seconds.
pub const DEFAULT_MAX_LATENCY_SECS: f64 = 2.0;

fn system_threshold(model: &System, name: &str, default: f64) -> f64 {
    model.properties.get_f64(name).unwrap_or(default)
}

/// The server groups connected to `client` whose load exceeds the
/// `maxServerLoad` threshold.
fn overloaded_groups_of(model: &System, client: &str) -> Vec<String> {
    let max_load = system_threshold(model, props::MAX_SERVER_LOAD, DEFAULT_MAX_SERVER_LOAD);
    let Some(client_id) = model.component_by_name(client) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (id, comp) in model.components_of_type(SERVER_GROUP_T) {
        if !model.connected(client_id, id) {
            continue;
        }
        if comp.properties.get_f64(props::LOAD).unwrap_or(0.0) > max_load {
            out.push(comp.name.clone());
        }
    }
    out
}

/// The bandwidth currently recorded on the client's role, if known.
fn client_role_bandwidth(model: &System, client: &str) -> Option<f64> {
    let client_id = model.component_by_name(client)?;
    for role_id in model.roles_of_component(client_id) {
        let role = model.role(role_id).ok()?;
        if role.rtype == CLIENT_ROLE_T {
            if let Some(bw) = role.properties.get_f64(props::BANDWIDTH) {
                return Some(bw);
            }
        }
    }
    None
}

/// `fixServerLoad` (Figure 5, lines 16–26): add a server to every overloaded
/// server group connected to the client.
#[derive(Debug, Default, Clone, Copy)]
pub struct FixServerLoadTactic;

impl Tactic for FixServerLoadTactic {
    fn name(&self) -> &str {
        "fixServerLoad"
    }

    fn attempt(&self, ctx: &TacticContext<'_>) -> Result<TacticResult, RepairError> {
        let Some(client) = client_of_violation(ctx.model, ctx.violation) else {
            return Ok(TacticResult::NotApplicable {
                reason: "violation does not identify a client".into(),
            });
        };
        let overloaded = overloaded_groups_of(ctx.model, &client);
        if overloaded.is_empty() {
            return Ok(TacticResult::NotApplicable {
                reason: format!("no overloaded server group connected to {client}"),
            });
        }
        // Only groups for which the runtime can actually recruit a spare
        // server can be repaired this way.
        let repairable: Vec<String> = overloaded
            .iter()
            .filter(|g| ctx.query.find_spare_server(g).is_some())
            .cloned()
            .collect();
        if repairable.is_empty() {
            return Ok(TacticResult::NotApplicable {
                reason: format!(
                    "server groups {overloaded:?} are overloaded but no spare server is available"
                ),
            });
        }
        let mut tx = Transaction::new(ctx.model);
        let mut added = Vec::new();
        for group in &repairable {
            let server = add_server(&mut tx, group)?;
            added.push(server);
        }
        Ok(TacticResult::Applied {
            ops: tx.ops().to_vec(),
            description: format!("added servers {added:?} to overloaded groups {repairable:?}"),
        })
    }
}

/// `fixBandwidth` (Figure 5, lines 28–42): if the client's bandwidth is below
/// `minBandwidth`, move it to the server group with the best bandwidth.
#[derive(Debug, Default, Clone, Copy)]
pub struct FixBandwidthTactic;

impl Tactic for FixBandwidthTactic {
    fn name(&self) -> &str {
        "fixBandwidth"
    }

    fn attempt(&self, ctx: &TacticContext<'_>) -> Result<TacticResult, RepairError> {
        let Some(client) = client_of_violation(ctx.model, ctx.violation) else {
            return Ok(TacticResult::NotApplicable {
                reason: "violation does not identify a client".into(),
            });
        };
        let min_bandwidth =
            system_threshold(ctx.model, props::MIN_BANDWIDTH, DEFAULT_MIN_BANDWIDTH_BPS);
        // Precondition (lines 30–31): the role bandwidth must be below the
        // minimum for this tactic to apply.
        if let Some(bw) = client_role_bandwidth(ctx.model, &client) {
            if bw >= min_bandwidth {
                return Ok(TacticResult::NotApplicable {
                    reason: format!(
                        "bandwidth {bw:.0} bps for {client} is above the {min_bandwidth:.0} bps minimum"
                    ),
                });
            }
        } else {
            return Ok(TacticResult::NotApplicable {
                reason: format!("no bandwidth observation for {client} yet"),
            });
        }
        // findGoodSGrp (lines 35–36).
        let Some(good_group) = ctx.query.find_good_server_group(&client, min_bandwidth) else {
            return Err(RepairError::NoServerGroupFound);
        };
        // Moving to the group the client already uses would be a no-op.
        let client_id = ctx
            .model
            .component_by_name(&client)
            .ok_or(RepairError::NoServerGroupFound)?;
        let current = ClientServerStyle::group_of_client(ctx.model, client_id)
            .and_then(|g| ctx.model.component(g).ok())
            .map(|g| g.name.clone());
        if current.as_deref() == Some(good_group.as_str()) {
            return Ok(TacticResult::NotApplicable {
                reason: format!("{client} is already connected to {good_group}"),
            });
        }
        let mut tx = Transaction::new(ctx.model);
        move_client(&mut tx, &client, &good_group)?;
        Ok(TacticResult::Applied {
            ops: tx.ops().to_vec(),
            description: format!("moved {client} to {good_group}"),
        })
    }
}

/// The third repair (not shown in the paper's Figure 5): remove a server from
/// an underutilised server group to keep the set of active servers minimal.
#[derive(Debug, Clone, Copy)]
pub struct ReduceServersTactic {
    /// A group is underutilised when its load is at or below this value.
    pub low_load_threshold: f64,
    /// Never shrink a group below this many servers.
    pub min_servers: usize,
}

impl Default for ReduceServersTactic {
    fn default() -> Self {
        ReduceServersTactic {
            low_load_threshold: 1.0,
            min_servers: 1,
        }
    }
}

impl Tactic for ReduceServersTactic {
    fn name(&self) -> &str {
        "reduceServers"
    }

    fn attempt(&self, ctx: &TacticContext<'_>) -> Result<TacticResult, RepairError> {
        // When the violation identifies a server group (the `underutilised`
        // invariant is scoped per group), only that group is considered;
        // subject-free violations keep the historical whole-model scan.
        let subject_group = group_of_violation(ctx.model, ctx.violation);
        // Find an underutilised group with more than the minimum number of
        // servers.
        let mut candidate: Option<(String, String)> = None;
        for (id, comp) in ctx.model.components_of_type(SERVER_GROUP_T) {
            if subject_group.as_deref().is_some_and(|g| g != comp.name) {
                continue;
            }
            let load = comp
                .properties
                .get_f64(props::LOAD)
                .unwrap_or(f64::INFINITY);
            if load > self.low_load_threshold {
                continue;
            }
            // Never shrink below the provisioned baseline: the group keeps
            // at least its deployment-time replica count (`baseReplicas`),
            // so cost reduction only retires capacity that repairs recruited
            // on top.
            let floor = comp
                .properties
                .get_f64(props::BASE_REPLICAS)
                .map(|b| b.max(0.0) as usize)
                .unwrap_or(self.min_servers)
                .max(self.min_servers);
            let children = ctx.model.children_of(id).unwrap_or_default();
            if children.len() <= floor {
                continue;
            }
            // Remove the most recently added server.
            if let Some(last) = children.last() {
                if let Ok(server) = ctx.model.component(*last) {
                    candidate = Some((comp.name.clone(), server.name.clone()));
                    break;
                }
            }
        }
        let Some((group, server)) = candidate else {
            return Ok(TacticResult::NotApplicable {
                reason: "no underutilised server group with removable servers".into(),
            });
        };
        let mut tx = Transaction::new(ctx.model);
        remove_server(&mut tx, &server)?;
        Ok(TacticResult::Applied {
            ops: tx.ops().to_vec(),
            description: format!("removed {server} from underutilised group {group}"),
        })
    }
}

/// Resolves the server group a violation refers to (liveness constraints are
/// scoped per server group).
fn group_of_violation(
    model: &System,
    violation: &archmodel::constraint::Violation,
) -> Option<String> {
    use archmodel::ElementRef;
    match violation.subject? {
        ElementRef::Component(id) => {
            let comp = model.component(id).ok()?;
            (comp.ctype == SERVER_GROUP_T).then(|| comp.name.clone())
        }
        _ => None,
    }
}

/// The model replicas of `group` whose `isAlive` gauge reading says the
/// backing runtime process has crashed.
fn dead_replicas_of(model: &System, group: &str) -> Vec<String> {
    let Some(group_id) = model.component_by_name(group) else {
        return Vec::new();
    };
    let mut dead = Vec::new();
    for child in model.children_of(group_id).unwrap_or_default() {
        if let Ok(server) = model.component(child) {
            if server.properties.get_f64(props::IS_ALIVE) == Some(0.0) {
                dead.push(server.name.clone());
            }
        }
    }
    dead
}

/// `failoverServerGroup` — the failure-recovery tactic behind the
/// `failover-server-group` strategy: when the violated server group has
/// assigned-but-dead replicas, remove the corpses from the model (which
/// deactivates and disconnects the dead runtime servers) and recruit an
/// equal number of spare servers in their place.
#[derive(Debug, Default, Clone, Copy)]
pub struct FailoverServerGroupTactic;

impl Tactic for FailoverServerGroupTactic {
    fn name(&self) -> &str {
        "failoverServerGroup"
    }

    fn attempt(&self, ctx: &TacticContext<'_>) -> Result<TacticResult, RepairError> {
        let Some(group) = group_of_violation(ctx.model, ctx.violation) else {
            return Ok(TacticResult::NotApplicable {
                reason: "violation does not identify a server group".into(),
            });
        };
        let dead = dead_replicas_of(ctx.model, &group);
        if dead.is_empty() {
            return Ok(TacticResult::NotApplicable {
                reason: format!("no dead replicas recorded for {group}"),
            });
        }
        let group_id = ctx
            .model
            .component_by_name(&group)
            .ok_or_else(|| RepairError::Operator(format!("group {group} vanished")))?;
        let members = ctx.model.children_of(group_id).unwrap_or_default().len();
        let spares = ctx.query.spare_server_count(&group);
        let replacements = dead.len().min(spares);
        if replacements == 0 && members == dead.len() {
            // Removing every replica with nothing to recruit would leave the
            // group empty; let the reroute tactic move the clients instead.
            return Ok(TacticResult::NotApplicable {
                reason: format!("{group} is fully dead and no spare server is available"),
            });
        }
        let mut tx = Transaction::new(ctx.model);
        for corpse in &dead {
            remove_server(&mut tx, corpse)?;
        }
        let mut recruited = Vec::new();
        for _ in 0..replacements {
            recruited.push(add_server(&mut tx, &group)?);
        }
        Ok(TacticResult::Applied {
            ops: tx.ops().to_vec(),
            description: format!(
                "failed {group} over: retired dead replicas {dead:?}, recruited {recruited:?}"
            ),
        })
    }
}

/// `rerouteClientsOffDeadLink` — the failure-recovery tactic behind the
/// `reroute-clients-off-dead-link` strategy: when the violated server group
/// has no live replicas left (total outage, or unreachable behind a cut
/// link), move every client it serves to the reachable group with the best
/// bandwidth. Aborts with `NoServerGroupFound` when no client can be placed.
#[derive(Debug, Default, Clone, Copy)]
pub struct RerouteClientsTactic;

impl Tactic for RerouteClientsTactic {
    fn name(&self) -> &str {
        "rerouteClientsOffDeadLink"
    }

    fn attempt(&self, ctx: &TacticContext<'_>) -> Result<TacticResult, RepairError> {
        let Some(group) = group_of_violation(ctx.model, ctx.violation) else {
            return Ok(TacticResult::NotApplicable {
                reason: "violation does not identify a server group".into(),
            });
        };
        let live = ctx
            .model
            .component_by_name(&group)
            .and_then(|id| ctx.model.component(id).ok())
            .and_then(|c| c.properties.get_f64(props::LIVE_SERVERS))
            .unwrap_or(f64::INFINITY);
        if live >= 1.0 {
            return Ok(TacticResult::NotApplicable {
                reason: format!("{group} still has {live:.0} live replicas"),
            });
        }
        let group_id = ctx
            .model
            .component_by_name(&group)
            .ok_or_else(|| RepairError::Operator(format!("group {group} vanished")))?;
        let clients: Vec<String> = ClientServerStyle::clients_of_group(ctx.model, group_id)
            .into_iter()
            .filter_map(|id| ctx.model.component(id).ok().map(|c| c.name.clone()))
            .collect();
        if clients.is_empty() {
            return Ok(TacticResult::NotApplicable {
                reason: format!("{group} serves no clients"),
            });
        }
        let min_bandwidth =
            system_threshold(ctx.model, props::MIN_BANDWIDTH, DEFAULT_MIN_BANDWIDTH_BPS);
        let mut tx = Transaction::new(ctx.model);
        let mut moved = Vec::new();
        for client in &clients {
            let Some(target) = ctx.query.find_good_server_group(client, min_bandwidth) else {
                continue;
            };
            if target == group {
                continue;
            }
            move_client(&mut tx, client, &target)?;
            moved.push(format!("{client}->{target}"));
        }
        if moved.is_empty() {
            return Err(RepairError::NoServerGroupFound);
        }
        Ok(TacticResult::Applied {
            ops: tx.ops().to_vec(),
            description: format!("rerouted clients off dead group {group}: {moved:?}"),
        })
    }
}

/// Builds the paper's `fixLatency` strategy: try `fixServerLoad` first, then
/// `fixBandwidth` (the paper's experiment prioritised server-load repairs).
pub fn fix_latency_strategy() -> RepairStrategy {
    RepairStrategy::new("fixLatency", TacticPolicy::FirstSuccess)
        .with_tactic(Box::new(FixServerLoadTactic))
        .with_tactic(Box::new(FixBandwidthTactic))
}

/// Builds a variant of `fixLatency` that tries the bandwidth repair first —
/// used by the tactic-ordering ablation (§7 discusses choosing the tactic
/// that contributes most to the latency).
pub fn fix_latency_bandwidth_first_strategy() -> RepairStrategy {
    RepairStrategy::new("fixLatency-bandwidthFirst", TacticPolicy::FirstSuccess)
        .with_tactic(Box::new(FixBandwidthTactic))
        .with_tactic(Box::new(FixServerLoadTactic))
}

/// Builds the cost-reduction strategy for underutilised groups.
pub fn reduce_servers_strategy() -> RepairStrategy {
    RepairStrategy::new("reduceServers", TacticPolicy::FirstSuccess)
        .with_tactic(Box::new(ReduceServersTactic::default()))
}

/// Builds the `failover-server-group` strategy: replace dead replicas with
/// spares.
pub fn failover_server_group_strategy() -> RepairStrategy {
    RepairStrategy::new("failover-server-group", TacticPolicy::FirstSuccess)
        .with_tactic(Box::new(FailoverServerGroupTactic))
}

/// Builds the `reroute-clients-off-dead-link` strategy: move clients off a
/// group with no live replicas.
pub fn reroute_clients_strategy() -> RepairStrategy {
    RepairStrategy::new("reroute-clients-off-dead-link", TacticPolicy::FirstSuccess)
        .with_tactic(Box::new(RerouteClientsTactic))
}

/// Builds the composite failure-recovery strategy for `liveness` violations:
/// fail the group over to spares when possible, otherwise reroute its
/// clients to a reachable group.
pub fn recover_liveness_strategy() -> RepairStrategy {
    RepairStrategy::new("recoverLiveness", TacticPolicy::FirstSuccess)
        .with_tactic(Box::new(FailoverServerGroupTactic))
        .with_tactic(Box::new(RerouteClientsTactic))
}

/// The constraint set of the paper's example: the latency invariant per
/// client (line 1 of Figure 5), plus observability constraints for load and
/// bandwidth used by dashboards and the ablations.
pub fn default_constraints() -> ConstraintSet {
    ConstraintSet::new()
        .with(
            Invariant::parse(
                "latency",
                ConstraintScope::EachComponent(CLIENT_T.into()),
                "self.averageLatency <= maxLatency",
            )
            .expect("latency invariant parses"),
        )
        .with(
            Invariant::parse(
                "serverLoad",
                ConstraintScope::EachComponent(SERVER_GROUP_T.into()),
                "self.load <= maxServerLoad",
            )
            .expect("load invariant parses"),
        )
        .with(
            Invariant::parse(
                "bandwidth",
                ConstraintScope::EachRole(CLIENT_ROLE_T.into()),
                "self.bandwidth >= minBandwidth",
            )
            .expect("bandwidth invariant parses"),
        )
        .with(
            Invariant::parse(
                "liveness",
                ConstraintScope::EachComponent(SERVER_GROUP_T.into()),
                "self.deadServers <= maxDeadServers",
            )
            .expect("liveness invariant parses"),
        )
}

/// The `underutilised` invariant behind the restart-aware cost-reduction
/// pass: a server group must either carry load or be at its provisioned
/// replica count. It fires when a group idles with *more* replicas than it
/// was deployed with — the state failover and load repairs leave behind once
/// a crashed server has returned as a spare — and routes to
/// [`reduce_servers_strategy`], which retires the surplus one replica per
/// repair down to the `baseReplicas` floor. Opt-in (not part of
/// [`default_constraints`]): cost reduction is a policy choice, and adding
/// it changes repair traces.
pub fn underutilised_invariant() -> Invariant {
    Invariant::parse(
        "underutilised",
        ConstraintScope::EachComponent(SERVER_GROUP_T.into()),
        "self.load > underutilisedLoad or self.replicationCount <= self.baseReplicas",
    )
    .expect("underutilised invariant parses")
}

/// Resolves the strategy that should handle a violation of the given
/// invariant, mirroring line 2 of Figure 5 (`! → fixLatency(r)`).
pub fn strategy_for_invariant(invariant: &str) -> Option<RepairStrategy> {
    match invariant {
        "latency" | "bandwidth" | "serverLoad" => Some(fix_latency_strategy()),
        "liveness" => Some(recover_liveness_strategy()),
        "underutilised" => Some(reduce_servers_strategy()),
        _ => None,
    }
}

/// Convenience used by tests and the ablation benches: run `fixLatency` for a
/// violation and return the outcome.
pub fn run_fix_latency(
    model: &System,
    violation: &archmodel::constraint::Violation,
    query: &dyn RuntimeQuery,
) -> crate::strategy::StrategyOutcome {
    fix_latency_strategy().run(model, violation, query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::StaticQuery;
    use crate::strategy::StrategyOutcome;
    use archmodel::constraint::Violation;
    use archmodel::ElementRef;

    /// Paper-like model: 2 groups, 3 servers each, 6 clients; User3 violates
    /// the latency bound. Group loads and role bandwidths are configurable.
    fn scenario(group1_load: i64, user3_bandwidth: f64) -> (System, Violation) {
        let mut model = ClientServerStyle::example_system("storage", 2, 3, 6).unwrap();
        let g1 = model.component_by_name("ServerGrp1").unwrap();
        model
            .component_mut(g1)
            .unwrap()
            .properties
            .set(props::LOAD, group1_load);
        let g2 = model.component_by_name("ServerGrp2").unwrap();
        model
            .component_mut(g2)
            .unwrap()
            .properties
            .set(props::LOAD, 0i64);
        // User3 is on ServerGrp1 (round robin: 1→G1, 2→G2, 3→G1, ...).
        let user3 = model.component_by_name("User3").unwrap();
        model
            .component_mut(user3)
            .unwrap()
            .properties
            .set(props::AVERAGE_LATENCY, 5.0);
        for role_id in model.roles_of_component(user3) {
            model
                .role_mut(role_id)
                .unwrap()
                .properties
                .set(props::BANDWIDTH, user3_bandwidth);
        }
        let violation = Violation {
            invariant: "latency".into(),
            subject: Some(ElementRef::Component(user3)),
            subject_name: "User3".into(),
            detail: "self.averageLatency <= maxLatency".into(),
        };
        (model, violation)
    }

    #[test]
    fn overloaded_group_triggers_add_server() {
        let (model, violation) = scenario(20, 1e6);
        let query = StaticQuery::new().with_spares("ServerGrp1", &["S4"]);
        let outcome = run_fix_latency(&model, &violation, &query);
        match outcome {
            StrategyOutcome::Repaired {
                applied_tactics,
                description,
                ops,
            } => {
                assert_eq!(applied_tactics, vec!["fixServerLoad".to_string()]);
                assert!(description.contains("ServerGrp1"));
                assert!(!ops.is_empty());
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn low_bandwidth_triggers_move_when_load_is_fine() {
        let (model, violation) = scenario(2, 3_000.0);
        let query = StaticQuery::new()
            .with_bandwidth("User3", "ServerGrp1", 3_000.0)
            .with_bandwidth("User3", "ServerGrp2", 2_000_000.0);
        let outcome = run_fix_latency(&model, &violation, &query);
        match outcome {
            StrategyOutcome::Repaired {
                applied_tactics,
                description,
                ..
            } => {
                assert_eq!(applied_tactics, vec!["fixBandwidth".to_string()]);
                assert!(description.contains("ServerGrp2"));
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn overload_without_spares_falls_through_to_bandwidth() {
        let (model, violation) = scenario(20, 3_000.0);
        // No spare servers anywhere, but ServerGrp2 has good bandwidth.
        let query = StaticQuery::new().with_bandwidth("User3", "ServerGrp2", 5_000_000.0);
        let outcome = run_fix_latency(&model, &violation, &query);
        match outcome {
            StrategyOutcome::Repaired {
                applied_tactics, ..
            } => assert_eq!(applied_tactics, vec!["fixBandwidth".to_string()]),
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn no_good_group_aborts_with_no_server_group_found() {
        let (model, violation) = scenario(2, 3_000.0);
        // Bandwidth everywhere is terrible.
        let query = StaticQuery::new().with_bandwidth("User3", "ServerGrp2", 1_000.0);
        let outcome = run_fix_latency(&model, &violation, &query);
        match outcome {
            StrategyOutcome::Aborted { reason } => assert!(reason.contains("NoServerGroupFound")),
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn healthy_client_yields_no_applicable_tactic() {
        let (model, violation) = scenario(2, 5_000_000.0);
        let query = StaticQuery::new();
        let outcome = run_fix_latency(&model, &violation, &query);
        match outcome {
            StrategyOutcome::NoApplicableTactic { reasons } => assert_eq!(reasons.len(), 2),
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn moving_to_the_same_group_is_not_a_repair() {
        let (model, violation) = scenario(2, 3_000.0);
        // Best group is the one the client is already on.
        let query = StaticQuery::new().with_bandwidth("User3", "ServerGrp1", 9e6);
        let outcome = run_fix_latency(&model, &violation, &query);
        assert!(matches!(
            outcome,
            StrategyOutcome::NoApplicableTactic { .. }
        ));
    }

    #[test]
    fn bandwidth_first_ordering_prefers_move() {
        let (model, violation) = scenario(20, 3_000.0);
        let query = StaticQuery::new()
            .with_spares("ServerGrp1", &["S4"])
            .with_bandwidth("User3", "ServerGrp2", 5e6);
        let outcome = fix_latency_bandwidth_first_strategy().run(&model, &violation, &query);
        match outcome {
            StrategyOutcome::Repaired {
                applied_tactics, ..
            } => assert_eq!(applied_tactics, vec!["fixBandwidth".to_string()]),
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn reduce_servers_removes_from_idle_group() {
        let (mut model, _) = scenario(0, 1e6);
        let g1 = model.component_by_name("ServerGrp1").unwrap();
        model
            .component_mut(g1)
            .unwrap()
            .properties
            .set(props::LOAD, 0i64);
        let violation = Violation {
            invariant: "underutilised".into(),
            subject: None,
            subject_name: "storage".into(),
            detail: String::new(),
        };
        let outcome = reduce_servers_strategy().run(&model, &violation, &StaticQuery::new());
        match outcome {
            StrategyOutcome::Repaired { description, .. } => {
                assert!(description.contains("removed"));
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn reduce_servers_never_empties_a_group() {
        let mut model = System::new("tiny");
        let g = ClientServerStyle::add_server_group(&mut model, "G1", 1).unwrap();
        let c = ClientServerStyle::add_client(&mut model, "U1").unwrap();
        ClientServerStyle::connect_client(&mut model, c, g).unwrap();
        model
            .component_mut(g)
            .unwrap()
            .properties
            .set(props::LOAD, 0i64);
        let violation = Violation {
            invariant: "underutilised".into(),
            subject: None,
            subject_name: "tiny".into(),
            detail: String::new(),
        };
        let outcome = reduce_servers_strategy().run(&model, &violation, &StaticQuery::new());
        assert!(matches!(
            outcome,
            StrategyOutcome::NoApplicableTactic { .. }
        ));
    }

    #[test]
    fn underutilised_invariant_fires_only_above_the_provisioned_baseline() {
        use archmodel::constraint::ConstraintSet;
        let (mut model, _) = scenario(0, 1e6);
        model.properties.set(props::UNDERUTILISED_LOAD, 1.0);
        for group in ["ServerGrp1", "ServerGrp2"] {
            let id = model.component_by_name(group).unwrap();
            let properties = &mut model.component_mut(id).unwrap().properties;
            properties.set(props::LOAD, 0i64);
            properties.set(props::BASE_REPLICAS, 3.0);
        }
        let set = ConstraintSet::new().with(underutilised_invariant());
        // At the provisioned count, an idle group is fine.
        let report = set.check(&model);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        // A surplus replica on an idle group violates.
        let mut tx = archmodel::Transaction::new(&model);
        add_server(&mut tx, "ServerGrp1").unwrap();
        tx.commit(&mut model).unwrap();
        let report = set.check(&model);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].subject_name, "ServerGrp1");
        // A busy group with a surplus replica does not.
        let g1 = model.component_by_name("ServerGrp1").unwrap();
        model
            .component_mut(g1)
            .unwrap()
            .properties
            .set(props::LOAD, 5i64);
        assert!(set.check(&model).violations.is_empty());
    }

    #[test]
    fn reduce_servers_respects_the_subject_group_and_base_floor() {
        let (mut model, _) = scenario(0, 1e6);
        for group in ["ServerGrp1", "ServerGrp2"] {
            let id = model.component_by_name(group).unwrap();
            let properties = &mut model.component_mut(id).unwrap().properties;
            properties.set(props::LOAD, 0i64);
            properties.set(props::BASE_REPLICAS, 3.0);
        }
        let g1 = model.component_by_name("ServerGrp1").unwrap();
        let violation = Violation {
            invariant: "underutilised".into(),
            subject: Some(ElementRef::Component(g1)),
            subject_name: "ServerGrp1".into(),
            detail: String::new(),
        };
        // Both groups idle at their baseline: the floor forbids any removal,
        // even though the historical min_servers (1) would allow it.
        let outcome = reduce_servers_strategy().run(&model, &violation, &StaticQuery::new());
        assert!(matches!(
            outcome,
            StrategyOutcome::NoApplicableTactic { .. }
        ));
        // Grow *ServerGrp2* beyond its baseline: the subject-scoped tactic
        // still leaves ServerGrp1 alone.
        let mut tx = archmodel::Transaction::new(&model);
        add_server(&mut tx, "ServerGrp2").unwrap();
        tx.commit(&mut model).unwrap();
        let outcome = reduce_servers_strategy().run(&model, &violation, &StaticQuery::new());
        assert!(matches!(
            outcome,
            StrategyOutcome::NoApplicableTactic { .. }
        ));
        // A surplus on the subject group itself is retired.
        let mut tx = archmodel::Transaction::new(&model);
        add_server(&mut tx, "ServerGrp1").unwrap();
        tx.commit(&mut model).unwrap();
        match reduce_servers_strategy().run(&model, &violation, &StaticQuery::new()) {
            StrategyOutcome::Repaired { description, .. } => {
                assert!(description.contains("ServerGrp1"), "{description}");
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn default_constraints_detect_latency_violation() {
        let (model, _) = scenario(2, 1e6);
        let report = default_constraints().check(&model);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].subject_name, "User3");
    }

    #[test]
    fn strategy_lookup_by_invariant() {
        assert!(strategy_for_invariant("latency").is_some());
        assert!(strategy_for_invariant("liveness").is_some());
        assert!(strategy_for_invariant("underutilised").is_some());
        assert!(strategy_for_invariant("unknown").is_none());
    }

    /// Model in which `dead` of ServerGrp1's three replicas have crashed
    /// (isAlive = 0) and the liveness census properties are set accordingly.
    fn crashed_scenario(dead: usize) -> (System, Violation) {
        let mut model = ClientServerStyle::example_system("storage", 2, 3, 6).unwrap();
        let g1 = model.component_by_name("ServerGrp1").unwrap();
        let children = model.children_of(g1).unwrap();
        for (i, child) in children.iter().enumerate() {
            let alive = if i < dead { 0.0 } else { 1.0 };
            model
                .component_mut(*child)
                .unwrap()
                .properties
                .set(props::IS_ALIVE, alive);
        }
        let live = (children.len() - dead) as f64;
        let grp = model.component_mut(g1).unwrap();
        grp.properties.set(props::LIVE_SERVERS, live);
        grp.properties.set(props::DEAD_SERVERS, dead as f64);
        model.properties.set(props::MAX_DEAD_SERVERS, 0.0);
        let violation = Violation {
            invariant: "liveness".into(),
            subject: Some(ElementRef::Component(g1)),
            subject_name: "ServerGrp1".into(),
            detail: "self.deadServers <= maxDeadServers".into(),
        };
        (model, violation)
    }

    #[test]
    fn liveness_invariant_fires_on_dead_replicas() {
        let (model, _) = crashed_scenario(2);
        let report = default_constraints().check(&model);
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "liveness" && v.subject_name == "ServerGrp1"));
        let (healthy, _) = crashed_scenario(0);
        let report = default_constraints().check(&healthy);
        assert!(!report.violations.iter().any(|v| v.invariant == "liveness"));
    }

    #[test]
    fn failover_replaces_dead_replicas_with_spares() {
        let (model, violation) = crashed_scenario(2);
        let query = StaticQuery::new().with_spares("ServerGrp1", &["S4", "S7"]);
        let outcome = recover_liveness_strategy().run(&model, &violation, &query);
        match outcome {
            StrategyOutcome::Repaired {
                applied_tactics,
                description,
                ops,
            } => {
                assert_eq!(applied_tactics, vec!["failoverServerGroup".to_string()]);
                assert!(description.contains("retired dead replicas"));
                // Two removals (2 ops each) and two recruits (3 ops each).
                assert!(!ops.is_empty());
                // Applying the plan keeps the replication count at three.
                let mut repaired = model.clone();
                for op in &ops {
                    archmodel::apply_op(&mut repaired, op).unwrap();
                }
                let g1 = repaired.component_by_name("ServerGrp1").unwrap();
                assert_eq!(repaired.children_of(g1).unwrap().len(), 3);
                assert!(ClientServerStyle::validate(&repaired).is_empty());
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn failover_with_one_spare_replaces_what_it_can() {
        let (model, violation) = crashed_scenario(2);
        let query = StaticQuery::new().with_spares("ServerGrp1", &["S4"]);
        match recover_liveness_strategy().run(&model, &violation, &query) {
            StrategyOutcome::Repaired { ops, .. } => {
                let mut repaired = model.clone();
                for op in &ops {
                    archmodel::apply_op(&mut repaired, op).unwrap();
                }
                let g1 = repaired.component_by_name("ServerGrp1").unwrap();
                // Two corpses retired, one spare recruited: 1 + 1 replicas.
                assert_eq!(repaired.children_of(g1).unwrap().len(), 2);
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn total_outage_without_spares_reroutes_the_clients() {
        let (model, violation) = crashed_scenario(3);
        // No spares, but ServerGrp2 is reachable at good bandwidth.
        let mut query = StaticQuery::new();
        for client in ["User1", "User3", "User5"] {
            query = query.with_bandwidth(client, "ServerGrp2", 5e6);
        }
        let outcome = recover_liveness_strategy().run(&model, &violation, &query);
        match outcome {
            StrategyOutcome::Repaired {
                applied_tactics,
                description,
                ops,
            } => {
                assert_eq!(
                    applied_tactics,
                    vec!["rerouteClientsOffDeadLink".to_string()]
                );
                assert!(description.contains("rerouted"));
                let mut repaired = model.clone();
                for op in &ops {
                    archmodel::apply_op(&mut repaired, op).unwrap();
                }
                // The odd-numbered clients (on ServerGrp1) all moved.
                let g2 = repaired.component_by_name("ServerGrp2").unwrap();
                assert_eq!(ClientServerStyle::clients_of_group(&repaired, g2).len(), 6);
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn total_outage_with_nowhere_to_go_aborts() {
        let (model, violation) = crashed_scenario(3);
        let outcome = recover_liveness_strategy().run(&model, &violation, &StaticQuery::new());
        match outcome {
            StrategyOutcome::Aborted { reason } => {
                assert!(reason.contains("NoServerGroupFound"));
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn healthy_group_leaves_recovery_not_applicable() {
        let (model, violation) = crashed_scenario(0);
        let outcome = recover_liveness_strategy().run(&model, &violation, &StaticQuery::new());
        match outcome {
            StrategyOutcome::NoApplicableTactic { reasons } => {
                assert_eq!(reasons.len(), 2);
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }
}
