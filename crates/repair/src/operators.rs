//! Architecture adaptation operators for the client/server style (§3.3).
//!
//! The paper defines three style-specific operators that repair scripts use
//! to modify the architecture:
//!
//! * `addServer()` — applied to a server group, adds a replicated server to
//!   its representation while keeping the architecture structurally valid;
//! * `move(to : ServerGroupT)` — applied to a client, deletes the role
//!   currently connecting it and attaches it to the connector of the target
//!   server group;
//! * `remove()` — applied to a server, deletes it from its containing group
//!   and updates the group's replication count.
//!
//! Operators work on a [`Transaction`], so a repair can be validated against
//! the style and aborted without touching the live model.

use archmodel::style::{props, ClientServerStyle, CLIENT_ROLE_T, SERVER_T};
use archmodel::{ChangeError, ModelOp, System, Transaction, Value};

/// Errors raised by adaptation operators.
#[derive(Debug, Clone, PartialEq)]
pub enum OperatorError {
    /// A named element was missing or of the wrong type.
    BadTarget(String),
    /// The underlying change could not be applied.
    Change(ChangeError),
}

impl From<ChangeError> for OperatorError {
    fn from(e: ChangeError) -> Self {
        OperatorError::Change(e)
    }
}

impl std::fmt::Display for OperatorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OperatorError::BadTarget(m) => write!(f, "bad operator target: {m}"),
            OperatorError::Change(e) => write!(f, "change failed: {e}"),
        }
    }
}

impl std::error::Error for OperatorError {}

fn next_server_name(model: &System, group_name: &str) -> String {
    let mut index = 1;
    loop {
        let candidate = format!("{group_name}.Server{index}");
        if model.component_by_name(&candidate).is_none() {
            return candidate;
        }
        index += 1;
    }
}

/// `addServer()`: adds a new replicated, active server to `group_name` and
/// updates the group's `replicationCount`. Returns the new server's name.
pub fn add_server(tx: &mut Transaction, group_name: &str) -> Result<String, OperatorError> {
    let group_id = tx
        .working()
        .component_by_name(group_name)
        .ok_or_else(|| OperatorError::BadTarget(format!("server group {group_name} not found")))?;
    let group = tx
        .working()
        .component(group_id)
        .map_err(ChangeError::from)?;
    if group.ctype != archmodel::style::SERVER_GROUP_T {
        return Err(OperatorError::BadTarget(format!(
            "{group_name} is a {}, not a server group",
            group.ctype
        )));
    }
    let server_name = next_server_name(tx.working(), group_name);
    tx.apply(ModelOp::AddComponent {
        name: server_name.clone(),
        ctype: SERVER_T.to_string(),
        parent: Some(group_name.to_string()),
    })?;
    tx.apply(ModelOp::SetComponentProperty {
        component: server_name.clone(),
        property: props::IS_ACTIVE.to_string(),
        value: Value::Bool(true),
    })?;
    let count = tx
        .working()
        .children_of(group_id)
        .map_err(ChangeError::from)?
        .len() as i64;
    tx.apply(ModelOp::SetComponentProperty {
        component: group_name.to_string(),
        property: props::REPLICATION_COUNT.to_string(),
        value: Value::Int(count),
    })?;
    Ok(server_name)
}

/// `move(to)`: moves `client_name` from its current server group's connector
/// to the connector of `to_group_name`, deleting the old client role and
/// creating a fresh one on the target connector. Returns the name of the
/// connector the client is now attached to.
pub fn move_client(
    tx: &mut Transaction,
    client_name: &str,
    to_group_name: &str,
) -> Result<String, OperatorError> {
    let model = tx.working();
    let client_id = model
        .component_by_name(client_name)
        .ok_or_else(|| OperatorError::BadTarget(format!("client {client_name} not found")))?;
    let to_group_id = model.component_by_name(to_group_name).ok_or_else(|| {
        OperatorError::BadTarget(format!("server group {to_group_name} not found"))
    })?;
    if model
        .component(to_group_id)
        .map_err(ChangeError::from)?
        .ctype
        != archmodel::style::SERVER_GROUP_T
    {
        return Err(OperatorError::BadTarget(format!(
            "{to_group_name} is not a server group"
        )));
    }

    // Locate the client's request port and its current attachment.
    let port_id = model
        .component(client_id)
        .map_err(ChangeError::from)?
        .ports
        .iter()
        .copied()
        .find(|p| {
            model
                .port(*p)
                .map(|p| p.name == ClientServerStyle::CLIENT_PORT)
                .unwrap_or(false)
        })
        .ok_or_else(|| {
            OperatorError::BadTarget(format!("client {client_name} has no request port"))
        })?;
    let old_role = model.roles_attached_to_port(port_id).first().copied();

    // Ensure the target group's connector exists. The connector is part of
    // the style; if missing we create it (and its server-side attachment).
    let target_conn_name = format!("{to_group_name}.Conn");
    if model.connector_by_name(&target_conn_name).is_none() {
        tx.apply(ModelOp::AddConnector {
            name: target_conn_name.clone(),
            ctype: archmodel::style::SERVICE_CONN_T.to_string(),
        })?;
        tx.apply(ModelOp::AddRole {
            connector: target_conn_name.clone(),
            role: "serverSide".to_string(),
            rtype: archmodel::style::SERVER_ROLE_T.to_string(),
        })?;
        tx.apply(ModelOp::Attach {
            component: to_group_name.to_string(),
            port: ClientServerStyle::GROUP_PORT.to_string(),
            connector: target_conn_name.clone(),
            role: "serverSide".to_string(),
        })?;
    }

    // Detach from the old connector and delete the stale role.
    if let Some(old_role_id) = old_role {
        let model = tx.working();
        let role = model.role(old_role_id).map_err(ChangeError::from)?;
        let old_conn = model.connector(role.owner).map_err(ChangeError::from)?;
        let old_conn_name = old_conn.name.clone();
        let old_role_name = role.name.clone();
        tx.apply(ModelOp::Detach {
            component: client_name.to_string(),
            port: ClientServerStyle::CLIENT_PORT.to_string(),
            connector: old_conn_name.clone(),
            role: old_role_name.clone(),
        })?;
        tx.apply(ModelOp::RemoveRole {
            connector: old_conn_name,
            role: old_role_name,
        })?;
    }

    // Create a fresh client role on the target connector and attach.
    let new_role_name = format!("{client_name}.role");
    tx.apply(ModelOp::AddRole {
        connector: target_conn_name.clone(),
        role: new_role_name.clone(),
        rtype: CLIENT_ROLE_T.to_string(),
    })?;
    tx.apply(ModelOp::Attach {
        component: client_name.to_string(),
        port: ClientServerStyle::CLIENT_PORT.to_string(),
        connector: target_conn_name.clone(),
        role: new_role_name,
    })?;
    Ok(target_conn_name)
}

/// `moveClientGroup(to)`: the class-level bulk variant of `move` — relocates
/// every named client onto `to_group_name`'s connector as **one** recorded
/// model operation, so a fleet-scale class move costs one change-set entry
/// (and one commit replay) instead of ~6 per member. Members missing from
/// the model are skipped; the final model state matches the per-client
/// [`move_client`] sequence exactly. Returns the target connector's name.
pub fn move_client_group(
    tx: &mut Transaction,
    clients: &[String],
    to_group_name: &str,
) -> Result<String, OperatorError> {
    let model = tx.working();
    let to_group_id = model.component_by_name(to_group_name).ok_or_else(|| {
        OperatorError::BadTarget(format!("server group {to_group_name} not found"))
    })?;
    if model
        .component(to_group_id)
        .map_err(ChangeError::from)?
        .ctype
        != archmodel::style::SERVER_GROUP_T
    {
        return Err(OperatorError::BadTarget(format!(
            "{to_group_name} is not a server group"
        )));
    }
    tx.apply(ModelOp::MoveClientGroup {
        clients: clients.to_vec(),
        to_group: to_group_name.to_string(),
    })?;
    Ok(format!("{to_group_name}.Conn"))
}

/// `remove()`: removes `server_name` from its containing server group and
/// updates the group's `replicationCount`. Returns the group's name.
pub fn remove_server(tx: &mut Transaction, server_name: &str) -> Result<String, OperatorError> {
    let model = tx.working();
    let server_id = model
        .component_by_name(server_name)
        .ok_or_else(|| OperatorError::BadTarget(format!("server {server_name} not found")))?;
    let server = model.component(server_id).map_err(ChangeError::from)?;
    if server.ctype != SERVER_T {
        return Err(OperatorError::BadTarget(format!(
            "{server_name} is a {}, not a server",
            server.ctype
        )));
    }
    let group_id = server.parent.ok_or_else(|| {
        OperatorError::BadTarget(format!("server {server_name} has no containing group"))
    })?;
    let group_name = model
        .component(group_id)
        .map_err(ChangeError::from)?
        .name
        .clone();
    tx.apply(ModelOp::RemoveComponent {
        name: server_name.to_string(),
    })?;
    let count = tx
        .working()
        .children_of(group_id)
        .map_err(ChangeError::from)?
        .len() as i64;
    tx.apply(ModelOp::SetComponentProperty {
        component: group_name.clone(),
        property: props::REPLICATION_COUNT.to_string(),
        value: Value::Int(count),
    })?;
    Ok(group_name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use archmodel::style::SERVER_GROUP_T;

    fn example() -> System {
        ClientServerStyle::example_system("storage", 2, 3, 4).unwrap()
    }

    #[test]
    fn add_server_keeps_style_valid() {
        let model = example();
        let mut tx = Transaction::new(&model);
        let name = add_server(&mut tx, "ServerGrp1").unwrap();
        assert_eq!(name, "ServerGrp1.Server4");
        assert!(ClientServerStyle::validate(tx.working()).is_empty());
        let grp = tx.working().component_by_name("ServerGrp1").unwrap();
        assert_eq!(
            tx.working()
                .component(grp)
                .unwrap()
                .properties
                .get_i64(props::REPLICATION_COUNT),
            Some(4)
        );
    }

    #[test]
    fn add_server_to_unknown_group_fails() {
        let model = example();
        let mut tx = Transaction::new(&model);
        assert!(matches!(
            add_server(&mut tx, "Nowhere"),
            Err(OperatorError::BadTarget(_))
        ));
        assert!(tx.is_empty());
    }

    #[test]
    fn add_server_to_non_group_fails() {
        let model = example();
        let mut tx = Transaction::new(&model);
        assert!(matches!(
            add_server(&mut tx, "User1"),
            Err(OperatorError::BadTarget(_))
        ));
    }

    #[test]
    fn move_client_changes_group_and_cleans_old_role() {
        let model = example();
        // User1 starts on ServerGrp1 (round-robin).
        let mut tx = Transaction::new(&model);
        let conn = move_client(&mut tx, "User1", "ServerGrp2").unwrap();
        assert_eq!(conn, "ServerGrp2.Conn");
        let working = tx.working();
        let user = working.component_by_name("User1").unwrap();
        let grp2 = working.component_by_name("ServerGrp2").unwrap();
        assert_eq!(
            ClientServerStyle::group_of_client(working, user),
            Some(grp2)
        );
        // The old connector no longer carries a role for User1.
        let old_conn = working.connector_by_name("ServerGrp1.Conn").unwrap();
        let stale = working
            .connector(old_conn)
            .unwrap()
            .roles
            .iter()
            .filter(|r| working.role(**r).unwrap().name == "User1.role")
            .count();
        assert_eq!(stale, 0);
        assert!(ClientServerStyle::validate(working).is_empty());
    }

    #[test]
    fn move_client_group_matches_sequential_moves() {
        let model = example();
        // Per-client moves: the classic realisation of a class move.
        let mut sequential = Transaction::new(&model);
        let clients: Vec<String> = ["User1", "User3"].iter().map(|s| s.to_string()).collect();
        for client in &clients {
            move_client(&mut sequential, client, "ServerGrp2").unwrap();
        }
        // The bulk operator: one recorded op, identical final model state.
        let mut bulk = Transaction::new(&model);
        let conn = move_client_group(&mut bulk, &clients, "ServerGrp2").unwrap();
        assert_eq!(conn, "ServerGrp2.Conn");
        assert_eq!(bulk.len(), 1);
        assert_eq!(bulk.working(), sequential.working());
        assert!(ClientServerStyle::validate(bulk.working()).is_empty());
        // The bulk op survives commit replay onto the live model too.
        let mut live = model.clone();
        bulk.commit(&mut live).unwrap();
        assert!(ClientServerStyle::validate(&live).is_empty());
    }

    #[test]
    fn move_client_group_to_non_group_fails() {
        let model = example();
        let mut tx = Transaction::new(&model);
        let err = move_client_group(&mut tx, &["User1".to_string()], "User2");
        assert!(matches!(err, Err(OperatorError::BadTarget(_))));
        assert!(tx.is_empty());
    }

    #[test]
    fn move_client_creates_connector_when_missing() {
        let mut model = System::new("min");
        let c = ClientServerStyle::add_client(&mut model, "User1").unwrap();
        let g1 = ClientServerStyle::add_server_group(&mut model, "G1", 1).unwrap();
        ClientServerStyle::add_server_group(&mut model, "G2", 1).unwrap();
        ClientServerStyle::connect_client(&mut model, c, g1).unwrap();
        // G2 has no connector yet.
        assert!(model.connector_by_name("G2.Conn").is_none());
        let mut tx = Transaction::new(&model);
        move_client(&mut tx, "User1", "G2").unwrap();
        assert!(tx.working().connector_by_name("G2.Conn").is_some());
        assert!(ClientServerStyle::validate(tx.working()).is_empty());
    }

    #[test]
    fn move_to_non_group_fails() {
        let model = example();
        let mut tx = Transaction::new(&model);
        assert!(matches!(
            move_client(&mut tx, "User1", "User2"),
            Err(OperatorError::BadTarget(_))
        ));
    }

    #[test]
    fn remove_server_updates_replication_count() {
        let model = example();
        let mut tx = Transaction::new(&model);
        let group = remove_server(&mut tx, "ServerGrp1.Server3").unwrap();
        assert_eq!(group, "ServerGrp1");
        let working = tx.working();
        let grp = working.component_by_name("ServerGrp1").unwrap();
        assert_eq!(
            working
                .component(grp)
                .unwrap()
                .properties
                .get_i64(props::REPLICATION_COUNT),
            Some(2)
        );
        assert!(ClientServerStyle::validate(working).is_empty());
    }

    #[test]
    fn remove_last_server_leaves_invalid_style_detectable() {
        let mut model = System::new("tiny");
        let g = ClientServerStyle::add_server_group(&mut model, "G1", 1).unwrap();
        let c = ClientServerStyle::add_client(&mut model, "U1").unwrap();
        ClientServerStyle::connect_client(&mut model, c, g).unwrap();
        let mut tx = Transaction::new(&model);
        remove_server(&mut tx, "G1.Server1").unwrap();
        // The operator applied, but the style validator flags the empty group
        // (the strategy layer uses this to abort the repair).
        assert!(!ClientServerStyle::validate(tx.working()).is_empty());
    }

    #[test]
    fn remove_non_server_fails() {
        let model = example();
        let mut tx = Transaction::new(&model);
        assert!(matches!(
            remove_server(&mut tx, "User1"),
            Err(OperatorError::BadTarget(_))
        ));
    }

    #[test]
    fn committed_ops_replay_onto_live_model() {
        let mut model = example();
        let mut tx = Transaction::new(&model);
        add_server(&mut tx, "ServerGrp2").unwrap();
        move_client(&mut tx, "User1", "ServerGrp2").unwrap();
        let ops = tx.commit(&mut model).unwrap();
        assert!(ops.len() >= 4);
        let user = model.component_by_name("User1").unwrap();
        let grp2 = model.component_by_name("ServerGrp2").unwrap();
        assert_eq!(ClientServerStyle::group_of_client(&model, user), Some(grp2));
        assert_eq!(model.components_of_type(SERVER_GROUP_T).count(), 2);
        assert!(ClientServerStyle::validate(&model).is_empty());
    }
}
