//! Repair strategies: policies over sequences of tactics.
//!
//! When an architectural constraint violation is detected, the associated
//! repair strategy is triggered. The strategy decides the policy for running
//! its tactics — apply the first that succeeds, or sequence through all of
//! them — validates the resulting model against the architectural style, and
//! either commits the repair or aborts (§3.2, Figure 5).

use crate::query::RuntimeQuery;
use crate::tactic::{RepairError, Tactic, TacticContext, TacticResult};
use archmodel::constraint::Violation;
use archmodel::style::ClientServerStyle;
use archmodel::{apply_op, ModelOp, System};

/// How a strategy runs its tactics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TacticPolicy {
    /// Apply the first applicable tactic that produces a valid repair (the
    /// paper's `fixLatency` behaviour).
    FirstSuccess,
    /// Sequence through every tactic, accumulating all applicable repairs.
    All,
}

/// The outcome of running a strategy for one violation.
#[derive(Debug, Clone, PartialEq)]
pub enum StrategyOutcome {
    /// A repair script was produced and validated against the style.
    Repaired {
        /// The accumulated model operations.
        ops: Vec<ModelOp>,
        /// Names of the tactics that contributed.
        applied_tactics: Vec<String>,
        /// Human-readable description.
        description: String,
    },
    /// No tactic was applicable — the paper's `abort ModelError`.
    NoApplicableTactic {
        /// The reasons each tactic reported.
        reasons: Vec<String>,
    },
    /// A tactic failed outright (e.g. `NoServerGroupFound`) or the repaired
    /// model would violate the style.
    Aborted {
        /// Why the repair was abandoned.
        reason: String,
    },
}

impl StrategyOutcome {
    /// True when a repair script was produced.
    pub fn is_repair(&self) -> bool {
        matches!(self, StrategyOutcome::Repaired { .. })
    }
}

/// A named repair strategy.
pub struct RepairStrategy {
    name: String,
    policy: TacticPolicy,
    tactics: Vec<Box<dyn Tactic>>,
}

impl RepairStrategy {
    /// Creates a strategy with the given tactic policy.
    pub fn new(name: impl Into<String>, policy: TacticPolicy) -> Self {
        RepairStrategy {
            name: name.into(),
            policy,
            tactics: Vec::new(),
        }
    }

    /// Adds a tactic (tactics run in insertion order).
    pub fn with_tactic(mut self, tactic: Box<dyn Tactic>) -> Self {
        self.tactics.push(tactic);
        self
    }

    /// The strategy's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The names of the tactics, in order.
    pub fn tactic_names(&self) -> Vec<&str> {
        self.tactics.iter().map(|t| t.name()).collect()
    }

    /// Runs the strategy for `violation` against `model`.
    pub fn run(
        &self,
        model: &System,
        violation: &Violation,
        query: &dyn RuntimeQuery,
    ) -> StrategyOutcome {
        let mut accumulated_ops: Vec<ModelOp> = Vec::new();
        let mut applied: Vec<String> = Vec::new();
        let mut descriptions: Vec<String> = Vec::new();
        let mut reasons: Vec<String> = Vec::new();
        // Working copy reflecting ops applied by earlier tactics, so later
        // tactics see the partially repaired architecture.
        let mut working = model.clone();

        for tactic in &self.tactics {
            let ctx = TacticContext {
                model: &working,
                violation,
                query,
            };
            match tactic.attempt(&ctx) {
                Ok(TacticResult::NotApplicable { reason }) => {
                    reasons.push(format!("{}: {reason}", tactic.name()));
                }
                Ok(TacticResult::Applied { ops, description }) => {
                    // Validate: the ops must apply cleanly and the result must
                    // satisfy the style.
                    let mut candidate = working.clone();
                    let mut apply_failed = None;
                    for op in &ops {
                        if let Err(e) = apply_op(&mut candidate, op) {
                            apply_failed = Some(e);
                            break;
                        }
                    }
                    if let Some(e) = apply_failed {
                        return StrategyOutcome::Aborted {
                            reason: format!(
                                "{}: repair script failed to apply: {e}",
                                tactic.name()
                            ),
                        };
                    }
                    let style_violations = ClientServerStyle::validate(&candidate);
                    if !style_violations.is_empty() {
                        return StrategyOutcome::Aborted {
                            reason: format!(
                                "{}: repair would violate the style: {}",
                                tactic.name(),
                                style_violations
                                    .iter()
                                    .map(|v| v.to_string())
                                    .collect::<Vec<_>>()
                                    .join("; ")
                            ),
                        };
                    }
                    working = candidate;
                    accumulated_ops.extend(ops);
                    applied.push(tactic.name().to_string());
                    descriptions.push(description);
                    if self.policy == TacticPolicy::FirstSuccess {
                        break;
                    }
                }
                Err(RepairError::NoServerGroupFound) => {
                    return StrategyOutcome::Aborted {
                        reason: format!("{}: NoServerGroupFound", tactic.name()),
                    };
                }
                Err(e) => {
                    return StrategyOutcome::Aborted {
                        reason: format!("{}: {e}", tactic.name()),
                    };
                }
            }
        }

        if applied.is_empty() {
            StrategyOutcome::NoApplicableTactic { reasons }
        } else {
            StrategyOutcome::Repaired {
                ops: accumulated_ops,
                applied_tactics: applied,
                description: descriptions.join("; "),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::StaticQuery;
    use archmodel::ElementRef;

    /// A tactic whose applicability and effect are scripted, for testing the
    /// strategy machinery in isolation.
    struct ScriptedTactic {
        name: String,
        result: Result<TacticResult, RepairError>,
    }

    impl Tactic for ScriptedTactic {
        fn name(&self) -> &str {
            &self.name
        }
        fn attempt(&self, _ctx: &TacticContext<'_>) -> Result<TacticResult, RepairError> {
            self.result.clone()
        }
    }

    fn model() -> System {
        ClientServerStyle::example_system("s", 2, 2, 2).unwrap()
    }

    fn violation(model: &System) -> Violation {
        let id = model.component_by_name("User1").unwrap();
        Violation {
            invariant: "latency".into(),
            subject: Some(ElementRef::Component(id)),
            subject_name: "User1".into(),
            detail: "averageLatency <= maxLatency".into(),
        }
    }

    fn applied(ops: Vec<ModelOp>) -> Result<TacticResult, RepairError> {
        Ok(TacticResult::Applied {
            ops,
            description: "scripted".into(),
        })
    }

    fn not_applicable() -> Result<TacticResult, RepairError> {
        Ok(TacticResult::NotApplicable {
            reason: "precondition failed".into(),
        })
    }

    fn add_server_op() -> Vec<ModelOp> {
        vec![
            ModelOp::AddComponent {
                name: "ServerGrp1.Server9".into(),
                ctype: archmodel::style::SERVER_T.into(),
                parent: Some("ServerGrp1".into()),
            },
            ModelOp::SetComponentProperty {
                component: "ServerGrp1".into(),
                property: archmodel::style::props::REPLICATION_COUNT.into(),
                value: archmodel::Value::Int(3),
            },
        ]
    }

    #[test]
    fn first_success_stops_after_one_applied_tactic() {
        let m = model();
        let v = violation(&m);
        let strategy = RepairStrategy::new("fixLatency", TacticPolicy::FirstSuccess)
            .with_tactic(Box::new(ScriptedTactic {
                name: "skip".into(),
                result: not_applicable(),
            }))
            .with_tactic(Box::new(ScriptedTactic {
                name: "first".into(),
                result: applied(add_server_op()),
            }))
            .with_tactic(Box::new(ScriptedTactic {
                name: "never-reached".into(),
                result: applied(add_server_op()),
            }));
        match strategy.run(&m, &v, &StaticQuery::new()) {
            StrategyOutcome::Repaired {
                applied_tactics, ..
            } => assert_eq!(applied_tactics, vec!["first".to_string()]),
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn all_policy_accumulates_every_applicable_tactic() {
        let m = model();
        let v = violation(&m);
        let strategy = RepairStrategy::new("fixAll", TacticPolicy::All)
            .with_tactic(Box::new(ScriptedTactic {
                name: "a".into(),
                result: applied(add_server_op()),
            }))
            .with_tactic(Box::new(ScriptedTactic {
                name: "b".into(),
                result: applied(vec![ModelOp::SetSystemProperty {
                    property: "note".into(),
                    value: archmodel::Value::Str("second".into()),
                }]),
            }));
        match strategy.run(&m, &v, &StaticQuery::new()) {
            StrategyOutcome::Repaired {
                ops,
                applied_tactics,
                ..
            } => {
                assert_eq!(applied_tactics.len(), 2);
                assert_eq!(ops.len(), 3);
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn no_applicable_tactic_reports_reasons() {
        let m = model();
        let v = violation(&m);
        let strategy = RepairStrategy::new("fixLatency", TacticPolicy::FirstSuccess)
            .with_tactic(Box::new(ScriptedTactic {
                name: "a".into(),
                result: not_applicable(),
            }))
            .with_tactic(Box::new(ScriptedTactic {
                name: "b".into(),
                result: not_applicable(),
            }));
        match strategy.run(&m, &v, &StaticQuery::new()) {
            StrategyOutcome::NoApplicableTactic { reasons } => assert_eq!(reasons.len(), 2),
            other => panic!("unexpected outcome: {other:?}"),
        }
        assert_eq!(strategy.tactic_names(), vec!["a", "b"]);
    }

    #[test]
    fn style_breaking_repair_is_aborted() {
        let m = model();
        let v = violation(&m);
        // Removing the whole server group leaves its clients dangling.
        let strategy = RepairStrategy::new("bad", TacticPolicy::FirstSuccess).with_tactic(
            Box::new(ScriptedTactic {
                name: "break-style".into(),
                result: applied(vec![ModelOp::RemoveComponent {
                    name: "ServerGrp1".into(),
                }]),
            }),
        );
        match strategy.run(&m, &v, &StaticQuery::new()) {
            StrategyOutcome::Aborted { reason } => assert!(reason.contains("style")),
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn tactic_error_aborts_strategy() {
        let m = model();
        let v = violation(&m);
        let strategy = RepairStrategy::new("fixBandwidth", TacticPolicy::FirstSuccess).with_tactic(
            Box::new(ScriptedTactic {
                name: "move".into(),
                result: Err(RepairError::NoServerGroupFound),
            }),
        );
        match strategy.run(&m, &v, &StaticQuery::new()) {
            StrategyOutcome::Aborted { reason } => assert!(reason.contains("NoServerGroupFound")),
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn invalid_ops_abort_with_explanation() {
        let m = model();
        let v = violation(&m);
        let strategy = RepairStrategy::new("broken", TacticPolicy::FirstSuccess).with_tactic(
            Box::new(ScriptedTactic {
                name: "bad-op".into(),
                result: applied(vec![ModelOp::RemoveComponent {
                    name: "DoesNotExist".into(),
                }]),
            }),
        );
        match strategy.run(&m, &v, &StaticQuery::new()) {
            StrategyOutcome::Aborted { reason } => assert!(reason.contains("failed to apply")),
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn outcome_is_repair_helper() {
        assert!(StrategyOutcome::Repaired {
            ops: vec![],
            applied_tactics: vec![],
            description: String::new()
        }
        .is_repair());
        assert!(!StrategyOutcome::Aborted {
            reason: String::new()
        }
        .is_repair());
    }
}
