//! The repair engine: from constraint violations to committed repair plans.
//!
//! The engine owns the mapping from invariants to repair strategies, the
//! policy for choosing which outstanding violation to repair, and the
//! (optional) damping that suppresses repairs whose predecessor has not yet
//! taken effect. It produces a [`RepairPlan`] — the list of model operations
//! to commit and propagate to the runtime layer — without mutating the model
//! itself, so the caller controls when the plan is applied.

use crate::damping::RepairDamping;
use crate::query::RuntimeQuery;
use crate::selection::{select_violation, SelectionPolicy};
use crate::strategy::{RepairStrategy, StrategyOutcome};
use archmodel::constraint::CheckReport;
use archmodel::{ModelOp, System};
use std::collections::BTreeMap;

/// A validated repair ready to be committed and translated to runtime
/// operations.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairPlan {
    /// The invariant whose violation triggered the repair.
    pub invariant: String,
    /// The subject (usually the client) being repaired.
    pub subject: String,
    /// The model operations making up the repair script.
    pub ops: Vec<ModelOp>,
    /// Names of the tactics that produced the script.
    pub tactics: Vec<String>,
    /// Human-readable description of the repair.
    pub description: String,
}

/// The outcome of asking the engine for a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOutcome {
    /// There was nothing to repair (no violations with a registered
    /// strategy).
    Nothing,
    /// A violation exists but the repair was suppressed (damping window, or
    /// no strategy could produce a repair).
    Skipped {
        /// Why the repair was suppressed.
        reason: String,
    },
    /// A repair plan was produced.
    Plan(RepairPlan),
    /// The strategy aborted (e.g. `NoServerGroupFound`); human attention may
    /// be needed.
    Aborted {
        /// The invariant whose repair aborted.
        invariant: String,
        /// Why.
        reason: String,
    },
}

/// The repair engine.
pub struct RepairEngine {
    strategies: BTreeMap<String, RepairStrategy>,
    selection: SelectionPolicy,
    damping: Option<RepairDamping>,
    plans_produced: u64,
    aborts: u64,
    suppressed: u64,
}

impl Default for RepairEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl RepairEngine {
    /// Creates an engine with no strategies, first-reported selection, and no
    /// damping.
    pub fn new() -> Self {
        RepairEngine {
            strategies: BTreeMap::new(),
            selection: SelectionPolicy::FirstReported,
            damping: None,
            plans_produced: 0,
            aborts: 0,
            suppressed: 0,
        }
    }

    /// Builds the paper's default engine: the `fixLatency` strategy handles
    /// latency, bandwidth, and server-load violations.
    pub fn with_paper_defaults() -> Self {
        let mut engine = Self::new();
        for invariant in ["latency", "bandwidth", "serverLoad"] {
            engine.register(invariant, crate::builtin::fix_latency_strategy());
        }
        engine
    }

    /// Registers `strategy` for violations of `invariant`.
    pub fn register(&mut self, invariant: &str, strategy: RepairStrategy) {
        self.strategies.insert(invariant.to_string(), strategy);
    }

    /// Sets the violation-selection policy.
    pub fn set_selection(&mut self, policy: SelectionPolicy) {
        self.selection = policy;
    }

    /// Enables repair damping with the given settle time (seconds).
    pub fn set_damping(&mut self, damping: Option<RepairDamping>) {
        self.damping = damping;
    }

    /// Names of invariants with a registered strategy.
    pub fn registered_invariants(&self) -> Vec<&str> {
        self.strategies.keys().map(|s| s.as_str()).collect()
    }

    /// Number of plans produced so far.
    pub fn plans_produced(&self) -> u64 {
        self.plans_produced
    }

    /// Number of aborted repairs so far.
    pub fn abort_count(&self) -> u64 {
        self.aborts
    }

    /// Number of repairs suppressed by damping.
    pub fn suppressed_count(&self) -> u64 {
        self.suppressed
    }

    /// Produces a repair plan for the most urgent violation in `report`, if
    /// any. `now` is used for damping decisions.
    pub fn plan(
        &mut self,
        model: &System,
        report: &CheckReport,
        query: &dyn RuntimeQuery,
        now: f64,
    ) -> PlanOutcome {
        // Only violations we know how to repair are considered.
        let mut candidates: Vec<_> = report
            .violations
            .iter()
            .filter(|v| self.strategies.contains_key(&v.invariant))
            .cloned()
            .collect();
        if candidates.is_empty() {
            return PlanOutcome::Nothing;
        }
        // Consider the violations in policy order; when the most urgent one
        // cannot be repaired right now (damping window, no applicable
        // tactic) fall through to the next one so an unrepairable client
        // does not starve the others.
        let mut skip_reasons: Vec<String> = Vec::new();
        while !candidates.is_empty() {
            let Some(violation) = select_violation(self.selection, &candidates, model).cloned()
            else {
                break;
            };
            candidates.retain(|v| {
                !(v.invariant == violation.invariant && v.subject_name == violation.subject_name)
            });
            if let Some(damping) = &self.damping {
                if !damping.allows(&violation.subject_name, now) {
                    self.suppressed += 1;
                    skip_reasons.push(format!(
                        "repair for {} suppressed for another {:.1} s (settle window)",
                        violation.subject_name,
                        damping.remaining(&violation.subject_name, now)
                    ));
                    continue;
                }
            }
            let strategy = self
                .strategies
                .get(&violation.invariant)
                .expect("filtered to registered invariants");
            match strategy.run(model, &violation, query) {
                StrategyOutcome::Repaired {
                    ops,
                    applied_tactics,
                    description,
                } => {
                    if let Some(damping) = &mut self.damping {
                        damping.record(&violation.subject_name, now);
                    }
                    self.plans_produced += 1;
                    return PlanOutcome::Plan(RepairPlan {
                        invariant: violation.invariant.clone(),
                        subject: violation.subject_name.clone(),
                        ops,
                        tactics: applied_tactics,
                        description,
                    });
                }
                StrategyOutcome::NoApplicableTactic { reasons } => {
                    self.suppressed += 1;
                    skip_reasons.push(format!(
                        "no applicable tactic for {}: {}",
                        violation.subject_name,
                        reasons.join("; ")
                    ));
                }
                StrategyOutcome::Aborted { reason } => {
                    self.aborts += 1;
                    return PlanOutcome::Aborted {
                        invariant: violation.invariant.clone(),
                        reason,
                    };
                }
            }
        }
        PlanOutcome::Skipped {
            reason: skip_reasons.join(" | "),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::default_constraints;
    use crate::query::StaticQuery;
    use archmodel::style::{props, ClientServerStyle};

    /// Model with User3 violating latency because ServerGrp1 is overloaded.
    fn overloaded_model() -> System {
        let mut model = ClientServerStyle::example_system("storage", 2, 3, 6).unwrap();
        let g1 = model.component_by_name("ServerGrp1").unwrap();
        model
            .component_mut(g1)
            .unwrap()
            .properties
            .set(props::LOAD, 20i64);
        let g2 = model.component_by_name("ServerGrp2").unwrap();
        model
            .component_mut(g2)
            .unwrap()
            .properties
            .set(props::LOAD, 0i64);
        for name in ["User1", "User2", "User4", "User5", "User6"] {
            let id = model.component_by_name(name).unwrap();
            model
                .component_mut(id)
                .unwrap()
                .properties
                .set(props::AVERAGE_LATENCY, 0.5);
        }
        let user3 = model.component_by_name("User3").unwrap();
        model
            .component_mut(user3)
            .unwrap()
            .properties
            .set(props::AVERAGE_LATENCY, 6.0);
        for role in model.roles().map(|(id, _)| id).collect::<Vec<_>>() {
            model
                .role_mut(role)
                .unwrap()
                .properties
                .set(props::BANDWIDTH, 5e6);
        }
        model
    }

    #[test]
    fn engine_produces_plan_for_latency_violation() {
        let model = overloaded_model();
        let report = default_constraints().check(&model);
        assert!(!report.is_clean());
        let mut engine = RepairEngine::with_paper_defaults();
        let query = StaticQuery::new().with_spares("ServerGrp1", &["S4"]);
        match engine.plan(&model, &report, &query, 100.0) {
            PlanOutcome::Plan(plan) => {
                // The first reported violation is User3's latency; the
                // fixServerLoad tactic repairs it by adding a server.
                assert_eq!(plan.invariant, "latency");
                assert_eq!(plan.tactics, vec!["fixServerLoad".to_string()]);
                assert!(!plan.ops.is_empty());
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
        assert_eq!(engine.plans_produced(), 1);
    }

    #[test]
    fn clean_report_yields_nothing() {
        let model = ClientServerStyle::example_system("storage", 1, 3, 2).unwrap();
        let report = CheckReport::default();
        let mut engine = RepairEngine::with_paper_defaults();
        assert_eq!(
            engine.plan(&model, &report, &StaticQuery::new(), 0.0),
            PlanOutcome::Nothing
        );
    }

    #[test]
    fn unregistered_invariants_are_ignored() {
        let model = overloaded_model();
        let report = default_constraints().check(&model);
        let mut engine = RepairEngine::new(); // nothing registered
        assert_eq!(
            engine.plan(&model, &report, &StaticQuery::new(), 0.0),
            PlanOutcome::Nothing
        );
        assert!(engine.registered_invariants().is_empty());
    }

    #[test]
    fn damping_suppresses_repeated_repairs() {
        let model = overloaded_model();
        let report = default_constraints().check(&model);
        let mut engine = RepairEngine::with_paper_defaults();
        engine.set_damping(Some(RepairDamping::new(120.0)));
        let query = StaticQuery::new().with_spares("ServerGrp1", &["S4", "S7"]);
        assert!(matches!(
            engine.plan(&model, &report, &query, 100.0),
            PlanOutcome::Plan(_)
        ));
        // Immediately after, the same subject is suppressed.
        match engine.plan(&model, &report, &query, 110.0) {
            PlanOutcome::Skipped { reason } => assert!(reason.contains("settle")),
            other => panic!("unexpected outcome: {other:?}"),
        }
        // The damped client plus the (unrepairable) server-load violation the
        // engine fell through to were both counted as suppressed.
        assert!(engine.suppressed_count() >= 1);
        // After the settle window it is allowed again.
        assert!(matches!(
            engine.plan(&model, &report, &query, 300.0),
            PlanOutcome::Plan(_)
        ));
    }

    #[test]
    fn abort_is_reported_when_no_group_qualifies() {
        let mut model = overloaded_model();
        // Make it a pure bandwidth problem with no overload.
        let g1 = model.component_by_name("ServerGrp1").unwrap();
        model
            .component_mut(g1)
            .unwrap()
            .properties
            .set(props::LOAD, 0i64);
        let user3 = model.component_by_name("User3").unwrap();
        for role in model.roles_of_component(user3) {
            model
                .role_mut(role)
                .unwrap()
                .properties
                .set(props::BANDWIDTH, 500.0);
        }
        let report = default_constraints().check(&model);
        let mut engine = RepairEngine::with_paper_defaults();
        // No bandwidth data ⇒ findGoodSGrp fails ⇒ abort.
        match engine.plan(&model, &report, &StaticQuery::new(), 0.0) {
            PlanOutcome::Aborted { reason, .. } => assert!(reason.contains("NoServerGroupFound")),
            other => panic!("unexpected outcome: {other:?}"),
        }
        assert_eq!(engine.abort_count(), 1);
    }

    #[test]
    fn worst_latency_selection_changes_choice() {
        let mut model = overloaded_model();
        // Two violating clients; User5 is worse than User3.
        let user5 = model.component_by_name("User5").unwrap();
        model
            .component_mut(user5)
            .unwrap()
            .properties
            .set(props::AVERAGE_LATENCY, 50.0);
        let report = default_constraints().check(&model);
        let query = StaticQuery::new().with_spares("ServerGrp1", &["S4"]);

        let mut first = RepairEngine::with_paper_defaults();
        first.set_selection(SelectionPolicy::FirstReported);
        let mut worst = RepairEngine::with_paper_defaults();
        worst.set_selection(SelectionPolicy::WorstLatency);

        // Restrict both engines to the per-client latency invariant so the
        // selection policy (not the invariant order) decides.
        let latency_only: Vec<_> = report
            .violations
            .iter()
            .filter(|v| v.invariant == "latency")
            .cloned()
            .collect();
        let latency_report = CheckReport {
            violations: latency_only,
            errors: vec![],
            evaluated: report.evaluated,
            skipped: 0,
        };
        let plan_first = match first.plan(&model, &latency_report, &query, 0.0) {
            PlanOutcome::Plan(p) => p,
            other => panic!("unexpected: {other:?}"),
        };
        let plan_worst = match worst.plan(&model, &latency_report, &query, 0.0) {
            PlanOutcome::Plan(p) => p,
            other => panic!("unexpected: {other:?}"),
        };
        assert_eq!(plan_first.subject, "User3");
        assert_eq!(plan_worst.subject, "User5");
    }
}
