//! Shared helpers for the benchmark harness.
//!
//! Each Criterion bench in `benches/` regenerates one figure or table of the
//! HPDC'02 paper: it performs the full experiment once and prints the series
//! the paper reports (so `cargo bench` reproduces the evaluation), and it
//! registers a reduced-size Criterion measurement so run-to-run performance of
//! the framework itself can be tracked.

use arch_adapt::experiment::{run_with_schedule, ExperimentConfig, RunResult};
use arch_adapt::framework::FrameworkConfig;
use gridapp::{ExperimentSchedule, GridConfig};
use simnet::TimeSeries;

/// Duration of the paper's experiment runs (seconds).
pub const FULL_RUN_SECS: f64 = 1800.0;
/// Duration used for the Criterion-measured reduced runs (seconds).
pub const SHORT_RUN_SECS: f64 = 180.0;

/// Runs one experiment under the Figure 7 workload.
pub fn run_figure7(label: &str, framework: FrameworkConfig, duration_secs: f64) -> RunResult {
    let grid = GridConfig::default();
    let schedule = ExperimentSchedule::figure7(&grid);
    run_with_schedule(
        label,
        ExperimentConfig {
            grid,
            framework,
            duration_secs,
        },
        Some(&schedule),
    )
    .expect("experiment runs")
}

/// Prints a series the way the paper's figures report it: one row per sample
/// (downsampled), log-friendly values.
pub fn print_series(figure: &str, subject: &str, unit: &str, series: &TimeSeries) {
    println!("[{figure}] {subject} ({unit})");
    if series.is_empty() {
        println!("  (no observations)");
        return;
    }
    for (t, v) in series.downsample(24).iter() {
        println!("  t={t:7.1}s  {v:14.5}");
    }
}

/// Prints the standard three-figure set (latency / queue length / bandwidth)
/// for a run.
pub fn print_run_figures(run: &RunResult, latency_fig: &str, queue_fig: &str, bandwidth_fig: &str) {
    for client in run.metrics.clients() {
        if let Some(series) = run.metrics.latency_series(&client) {
            print_series(latency_fig, &client, "s", series);
        }
    }
    for group in run.metrics.groups() {
        if let Some(series) = run.metrics.queue_series(&group) {
            print_series(queue_fig, &group, "requests", series);
        }
    }
    for client in run.metrics.clients() {
        if let Some(series) = run.metrics.bandwidth_series(&client) {
            print_series(bandwidth_fig, &client, "bps", series);
        }
    }
    println!(
        "[{latency_fig}] summary: {:.1}% of requests above the {:.0} s bound, first violation {:?}",
        run.summary.fraction_latency_above_bound * 100.0,
        run.latency_bound_secs,
        run.summary.first_violation_secs
    );
    if run.summary.repairs_started > 0 {
        println!(
            "[{latency_fig}] repairs: {} completed (mean {:.1} s), {} client moves, {} servers activated, intervals {:?}",
            run.summary.repairs_completed,
            run.summary.mean_repair_duration_secs.unwrap_or(0.0),
            run.summary.client_moves,
            run.summary.servers_activated,
            run.repair_intervals
        );
    }
}

/// Whether the full 1800 s figure reproduction should run (skipped when the
/// `BENCH_QUICK` environment variable is set, to keep CI turnaround short).
pub fn full_figures_enabled() -> bool {
    std::env::var("BENCH_QUICK").is_err()
}

/// The figure-reproduction duration honouring `BENCH_QUICK`.
pub fn figure_duration() -> f64 {
    if full_figures_enabled() {
        FULL_RUN_SECS
    } else {
        600.0
    }
}
