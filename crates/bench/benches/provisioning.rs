//! §5 provisioning — "we calculated that an initial starting point of 3
//! replicated servers in one server group would be sufficient to serve our
//! six clients, and that the bandwidth between the clients and servers should
//! not be less than 10 Kbps."
//!
//! Reproduces the design-time queueing analysis and benchmarks it.

use analysis::{provision, MmcQueue, ProvisioningInput};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn print_provisioning() {
    let input = ProvisioningInput::default();
    let plan = provision(&input, 16).expect("feasible");
    println!("[provisioning] paper inputs: λ=6 req/s, 0.5 KB requests, 20 KB responses, 2 s bound");
    println!(
        "[provisioning]   → {} replicated servers, predicted response {:.2} s, min bandwidth {:.0} bps",
        plan.servers, plan.predicted_response_time, plan.bandwidth.min_bandwidth_bps
    );
    println!("[provisioning] replica count vs. arrival rate:");
    for arrival in [3.0, 6.0, 9.0, 12.0, 18.0, 24.0] {
        let sized = provision(
            &ProvisioningInput {
                arrival_rate: arrival,
                ..input
            },
            32,
        );
        match sized {
            Some(p) => println!("  λ={arrival:5.1} → {:2} servers", p.servers),
            None => println!("  λ={arrival:5.1} → infeasible"),
        }
    }
    println!("[provisioning] M/M/c at the stress load (12 req/s):");
    for c in 3..=6 {
        let q = MmcQueue::new(12.0, 2.5, c);
        match q.expected_queue_length() {
            Some(lq) => println!("  c={c}: ρ={:.2}, Lq={lq:.1}", q.utilization()),
            None => println!(
                "  c={c}: ρ={:.2} (unstable, queue grows without bound)",
                q.utilization()
            ),
        }
    }
}

fn bench_provisioning(c: &mut Criterion) {
    print_provisioning();
    c.bench_function("provisioning/erlang_c_sweep", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for arrival in 1..=24 {
                if let Some(plan) = provision(
                    &ProvisioningInput {
                        arrival_rate: black_box(arrival as f64),
                        ..ProvisioningInput::default()
                    },
                    64,
                ) {
                    total += plan.servers;
                }
            }
            total
        })
    });
}

criterion_group!(benches, bench_provisioning);
criterion_main!(benches);
