//! Observability overhead — the cost of leaving the meters on.
//!
//! Runs the same small sweep matrix unmetered (the default `NullRegistry`,
//! every instrumentation site short-circuits on `enabled()`) and metered
//! (a live `MetricsRegistry` per run: counters, gauges, and wall-clock span
//! histograms all recording), interleaved, and gates the metered minimum at
//! ≤10% over the unmetered minimum. Minima are compared — not means — so a
//! scheduler hiccup in one sample cannot fail the gate; interleaving keeps
//! thermal/frequency drift from biasing either side.
//!
//! `OBS_OVERHEAD_QUICK=1` shrinks the matrix for CI smoke runs.

use arch_adapt::sweep::{run_sweep, SweepSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn quick() -> bool {
    std::env::var("OBS_OVERHEAD_QUICK").is_ok_and(|v| v == "1")
}

fn bench_spec(collect_metrics: bool) -> SweepSpec {
    SweepSpec {
        topologies: vec!["paper".into(), "congested-core".into()],
        workloads: vec!["step".into()],
        strategies: vec!["adaptive".into()],
        durations_secs: vec![if quick() { 60.0 } else { 180.0 }],
        seeds: if quick() { vec![42] } else { vec![42, 7] },
        fault_profiles: vec!["none".into()],
        collect_metrics,
        detectors: false,
    }
}

fn run_once(spec: &SweepSpec) -> Duration {
    let started = Instant::now();
    black_box(run_sweep(black_box(spec), 1).expect("sweep runs"));
    started.elapsed()
}

/// The ≤10% overhead gate on interleaved minima.
fn assert_overhead_bounded() {
    let unmetered_spec = bench_spec(false);
    let metered_spec = bench_spec(true);
    // Warm both paths once (allocator caches, lazy path trees).
    run_once(&unmetered_spec);
    run_once(&metered_spec);
    let samples = if quick() { 3 } else { 5 };
    let mut unmetered_min = Duration::MAX;
    let mut metered_min = Duration::MAX;
    for _ in 0..samples {
        unmetered_min = unmetered_min.min(run_once(&unmetered_spec));
        metered_min = metered_min.min(run_once(&metered_spec));
    }
    let ratio = metered_min.as_secs_f64() / unmetered_min.as_secs_f64();
    println!(
        "[obs_overhead] unmetered min {:.1} ms, metered min {:.1} ms, ratio {ratio:.3}x",
        unmetered_min.as_secs_f64() * 1e3,
        metered_min.as_secs_f64() * 1e3,
    );
    assert!(
        ratio <= 1.10,
        "metered sweep is {ratio:.3}x the unmetered sweep — the metrics layer must cost ≤10%"
    );
}

fn bench_obs_overhead(c: &mut Criterion) {
    assert_overhead_bounded();
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    for (label, metered) in [("null_registry", false), ("metered", true)] {
        let spec = bench_spec(metered);
        group.bench_function(label, |b| {
            b.iter(|| {
                run_sweep(black_box(&spec), 1)
                    .expect("sweep runs")
                    .total_units
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
