//! Trace store throughput — the persistent run-trace registry.
//!
//! Benchmarks the observation layer on synthetic event streams: appending a
//! run's worth of events to the segment store, replaying a run from disk,
//! and the query engine's indexed (per-kind) path against its full-scan
//! path. Also measures the end-to-end overhead a traced sweep pays over an
//! untraced one on the same matrix — with the default `NullSink`, the
//! adaptation loop skips event construction entirely, so the traced run's
//! extra cost is buffering plus the single-threaded store write.

use arch_adapt::sweep::{run_sweep, run_sweep_traced, SweepSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tracestore::{EventKind, Query, TraceEvent, TraceStore};

const KINDS: [EventKind; 9] = [
    EventKind::Gauge,
    EventKind::Violation,
    EventKind::RepairStart,
    EventKind::RepairEnd,
    EventKind::RepairAborted,
    EventKind::Reconfiguration,
    EventKind::Fault,
    EventKind::Transfer,
    EventKind::Info,
];

/// A deterministic synthetic stream shaped like real run telemetry: mostly
/// gauge readings and transfers, with a sprinkling of lifecycle events.
fn synthetic_events(n: usize) -> Vec<TraceEvent> {
    (0..n)
        .map(|i| {
            let kind = if i % 10 < 6 {
                EventKind::Gauge
            } else if i % 10 < 9 {
                EventKind::Transfer
            } else {
                KINDS[i % KINDS.len()]
            };
            TraceEvent::new(
                i as f64 / 10.0,
                kind,
                format!("User{}", i % 500),
                "bandwidth",
            )
            .with_value((i % 977) as f64 * 1e3)
            .with_correlation(i as u64)
        })
        .collect()
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("bench-trace-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    path
}

fn bench_store(c: &mut Criterion) {
    const N: usize = 100_000;
    let events = synthetic_events(N);

    let mut group = c.benchmark_group("trace_store");
    group.sample_size(10);

    group.bench_function("append_100k", |b| {
        b.iter(|| {
            let dir = scratch("append");
            let mut store = TraceStore::open(&dir).unwrap();
            store.append_run("bench/run", black_box(&events)).unwrap();
            let total = store.total_events();
            drop(store);
            std::fs::remove_dir_all(&dir).unwrap();
            total
        })
    });

    let dir = scratch("read");
    {
        let mut store = TraceStore::open(&dir).unwrap();
        store.append_run("bench/run", &events).unwrap();
    }
    let store = TraceStore::open(&dir).unwrap();

    group.bench_function("replay_100k", |b| {
        b.iter(|| store.read_run(black_box("bench/run")).unwrap().len())
    });

    // The indexed path seeks only the matching kind's offsets; the
    // predicate path decodes everything. Both are correct — the gap is the
    // point of the per-kind index.
    group.bench_function("query_indexed_faults", |b| {
        let query = Query::new().kind(EventKind::Fault);
        b.iter(|| query.execute(black_box(&store)).unwrap().len())
    });
    group.bench_function("query_predicate_faults", |b| {
        let query = Query::new().predicate("kind == \"fault\"").unwrap();
        b.iter(|| query.execute(black_box(&store)).unwrap().len())
    });

    group.finish();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_traced_sweep_overhead(c: &mut Criterion) {
    let spec = SweepSpec {
        topologies: vec!["paper".into()],
        workloads: vec!["step".into()],
        strategies: vec!["adaptive".into()],
        durations_secs: vec![120.0],
        seeds: vec![42],
        fault_profiles: vec!["single-link-cut".into()],
        collect_metrics: false,
        detectors: false,
    };
    let mut group = c.benchmark_group("traced_sweep_overhead");
    group.sample_size(10);
    group.bench_function("untraced", |b| {
        b.iter(|| run_sweep(black_box(&spec), 1).unwrap().total_units)
    });
    group.bench_function("traced", |b| {
        b.iter(|| {
            let dir = scratch("sweep");
            let report = run_sweep_traced(black_box(&spec), 1, &dir).unwrap();
            std::fs::remove_dir_all(&dir).unwrap();
            report.total_units
        })
    });
    group.finish();
}

criterion_group!(benches, bench_store, bench_traced_sweep_overhead);
criterion_main!(benches);
