//! Large-scale testbed benchmark: control-loop throughput and probe latency
//! at 2,000 clients, plus the allocator-equivalence gate.
//!
//! Three things happen here:
//!
//! 1. **Equivalence gate** — the indexed incremental allocator and the
//!    retained reference implementation (`max_min_fair_rates`) are run over
//!    flow sets drawn from the large-scale topology and must produce
//!    **bit-identical** rates (the bench aborts otherwise).
//! 2. **Criterion measurements** — control-tick throughput (one 5 s control
//!    period of the 2,000-client adaptive framework per iteration) and
//!    `remos_get_flow` probe latency, warm (memoised epoch) and cold (epoch
//!    invalidated between queries).
//! 3. **The 300 s control-vs-adaptive comparison** — run once, wall-timed,
//!    with the headline numbers written as JSON (to
//!    `$LARGE_SCALE_BENCH_OUT`, default `large_scale_bench.json`) so CI can
//!    archive a perf trajectory.
//!
//! Set `LARGE_SCALE_QUICK=1` (CI does) to collect fewer samples.

use arch_adapt::experiment::{run_with_schedule_and_faults, Comparison, ExperimentConfig};
use arch_adapt::framework::{AdaptationFramework, FrameworkConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use gridapp::{ExperimentSchedule, GridApp, GridConfig, TestbedSpec, SERVER_GROUP_1};
use simnet::flow::{max_min_fair_rates, FlowDemand, FlowKey};
use simnet::{Allocator, DemandSet, SimRng, SimTime};
use std::collections::HashMap;
use std::hint::black_box;

fn quick() -> bool {
    std::env::var("LARGE_SCALE_QUICK").is_ok_and(|v| v == "1")
}

fn large_grid() -> GridConfig {
    GridConfig::with_testbed(TestbedSpec::large_scale())
}

/// Asserts the indexed allocator reproduces the reference bit-for-bit over
/// flow sets sampled from the large-scale topology.
fn assert_allocator_equivalence() {
    let testbed = gridapp::Testbed::from_spec(&TestbedSpec::large_scale()).expect("testbed builds");
    let topology = &testbed.topology;
    let mut rng = SimRng::seed_from_u64(2026).derive(5);
    let hosts: Vec<_> = testbed.client_hosts.iter().map(|&(_, h)| h).collect();
    let servers = &testbed.server_hosts;

    let capacities_map: HashMap<simnet::LinkId, f64> = topology
        .links()
        .map(|(id, l)| (id, l.effective_capacity_bps()))
        .collect();
    let capacities_dense: Vec<f64> = topology
        .links()
        .map(|(_, l)| l.effective_capacity_bps())
        .collect();

    let mut allocator = Allocator::new();
    let mut rates = Vec::new();
    for flows in [16usize, 128, 512] {
        let mut reference_demands = Vec::new();
        let mut dense = DemandSet::new();
        for key in 0..flows as u64 {
            let src = servers[rng.index(servers.len())];
            let dst = hosts[rng.index(hosts.len())];
            let path = topology.path(src, dst).expect("connected testbed");
            dense.push(1.0, &path.iter().map(|l| l.0 as u32).collect::<Vec<_>>());
            reference_demands.push(FlowDemand {
                key: FlowKey(key),
                links: path,
                weight: 1.0,
            });
        }
        let expected = max_min_fair_rates(&capacities_map, &reference_demands);
        allocator.solve(&capacities_dense, &dense, None, &mut rates);
        for (i, rate) in rates.iter().enumerate() {
            let reference = expected[&FlowKey(i as u64)];
            assert!(
                rate.to_bits() == reference.to_bits(),
                "allocator diverged from reference at flow {i}: {rate} != {reference}"
            );
        }
    }
    println!("[large-scale] allocator matches reference bit-identically (16/128/512 flows)");
}

/// Asserts the aggregate-flow allocator is observationally invisible: a
/// 60 s large-scale run with class aggregation on and off must produce
/// bit-identical completions, queue lengths, and unserved demand — and the
/// aggregated run must actually have aggregated (non-trivial row sharing).
fn assert_aggregate_equivalence() {
    let fingerprint = |aggregate: bool| {
        let config = GridConfig {
            aggregate_flows: aggregate,
            ..large_grid()
        };
        let mut app = GridApp::build(config).expect("app builds");
        let mut out: Vec<(String, u64)> = Vec::new();
        // Row counts describe the *last* allocation epoch (often idle at a
        // coarse sample boundary), so track the busiest epoch seen.
        let mut peak_rows = 0usize;
        let mut t = 0.0;
        while t < 60.0 {
            t += 10.0;
            app.sample_metrics(SimTime::from_secs(t));
            peak_rows = peak_rows.max(app.aggregation_stats().rows);
            for completion in app.take_completions() {
                out.push((completion.client, completion.latency_secs.to_bits()));
            }
            for group in app.group_names() {
                out.push((
                    format!("queue/{group}"),
                    app.queue_length(&group).unwrap() as u64,
                ));
            }
            out.push(("unserved".to_string(), app.unserved_demand_secs().to_bits()));
        }
        (out, peak_rows, app.aggregation_stats().permanent_splits)
    };
    let (agg, agg_rows, agg_splits) = fingerprint(true);
    let (exploded, exploded_rows, exploded_splits) = fingerprint(false);
    assert_eq!(
        agg, exploded,
        "aggregate and exploded runs must be bit-identical"
    );
    // Proof the toggle was real: the aggregated run pushed class rows and
    // split symmetry-broken clients out of them; the exploded run, with no
    // flow classes registered, can do neither.
    assert!(
        agg_rows > 0 && agg_splits > 0,
        "aggregated run never engaged: {agg_rows} rows, {agg_splits} splits"
    );
    assert!(
        exploded_rows == 0 && exploded_splits == 0,
        "exploded run must not aggregate: {exploded_rows} rows, {exploded_splits} splits"
    );
    println!(
        "[large-scale] aggregate allocator observationally invisible over 60 s \
         ({agg_rows} rows at peak, {agg_splits} permanent splits)"
    );
}

/// Asserts the symmetry-aware class probing cuts per-tick probe sampling by
/// at least 4× on the large-scale preset (the PR's headline probe figure),
/// and returns `(full, shared)` solve counts for the archived JSON.
fn assert_probe_sharing() -> (u64, u64) {
    let mut app = GridApp::build(large_grid()).expect("app builds");
    app.advance(SimTime::from_secs(10.0));
    let index = planner::ClassIndex::build(app.testbed());

    let before = app.probe_solve_count();
    let shared = planner::class_flow_snapshot(&app, &index);
    let shared_solves = app.probe_solve_count() - before;

    // Perturb the network so the second snapshot cannot ride the first
    // one's per-epoch probe memo.
    app.set_competition_sg2(SimTime::from_secs(10.5), 1.0e6)
        .expect("competition applies");
    let before = app.probe_solve_count();
    let full = app.flow_snapshot();
    let full_solves = app.probe_solve_count() - before;

    assert_eq!(shared.entries().len(), full.entries().len());
    assert!(
        full_solves >= 4 * shared_solves.max(1),
        "class sharing must cut probe solves ≥4×: {full_solves} vs {shared_solves}"
    );
    println!(
        "[large-scale] probe sharing: {full_solves} max-min solves/snapshot per-client \
         vs {shared_solves} class-shared ({:.0}×)",
        full_solves as f64 / shared_solves.max(1) as f64
    );
    (full_solves, shared_solves)
}

/// Asserts the incremental constraint checker is report-identical to a full
/// sweep at every check of a 60 s large-scale adaptive run: with
/// `verify_constraint_check` on, the framework re-runs the full sweep after
/// every incremental check and panics on any divergence in violations,
/// errors, or pair accounting.
fn assert_incremental_check_equivalence() {
    let grid = large_grid();
    let schedule = ExperimentSchedule::by_name("step", &grid, 60.0).expect("step schedule exists");
    let config = FrameworkConfig {
        verify_constraint_check: true,
        ..FrameworkConfig::adaptive()
    };
    run_with_schedule_and_faults(
        "incremental-check-gate",
        ExperimentConfig {
            grid,
            framework: config,
            duration_secs: 60.0,
        },
        Some(&schedule),
        None,
    )
    .expect("verified large-scale run completes");
    println!(
        "[large-scale] incremental constraint checks matched full sweeps at every \
         check of a 60 s adaptive run"
    );
}

fn bench_large_scale(c: &mut Criterion) {
    assert_allocator_equivalence();
    assert_aggregate_equivalence();
    assert_incremental_check_equivalence();
    let (full_solves, shared_solves) = assert_probe_sharing();

    let mut group = c.benchmark_group("large_scale");
    group.sample_size(if quick() { 3 } else { 10 });

    // Control-loop throughput: one 5 s control period of the full adaptive
    // framework (2,000 clients, ~100 servers) per iteration.
    group.bench_function("control_tick", |b| {
        let mut fw = AdaptationFramework::new(large_grid(), FrameworkConfig::adaptive())
            .expect("framework builds");
        let mut t = 0.0;
        b.iter(|| {
            t += 5.0;
            fw.tick(SimTime::from_secs(t));
        })
    });

    // The same control period under the group planner: the tick's flow
    // snapshot is class-shared (one max-min probe per network-position
    // class), which is where the per-tick probe second went.
    group.bench_function("control_tick_planned", |b| {
        let planned = FrameworkConfig::by_name("plannedRepair").expect("preset exists");
        let mut fw = AdaptationFramework::new(large_grid(), planned).expect("framework builds");
        let mut t = 0.0;
        b.iter(|| {
            t += 5.0;
            fw.tick(SimTime::from_secs(t));
        })
    });

    // Probe latency, warm: repeated identical queries inside one allocation
    // epoch are served from the epoch memo.
    group.bench_function("remos_get_flow_warm", |b| {
        let mut app = GridApp::build(large_grid()).expect("app builds");
        app.advance(SimTime::from_secs(30.0));
        b.iter(|| {
            app.remos_get_flow(black_box("User1000"), SERVER_GROUP_1)
                .unwrap()
        })
    });

    // Probe latency, cold: the epoch is invalidated before every query, so
    // each one is a fresh one-shot insert against the converged allocation.
    group.bench_function("remos_get_flow_cold", |b| {
        let mut app = GridApp::build(large_grid()).expect("app builds");
        app.advance(SimTime::from_secs(30.0));
        let mut t = 30.0;
        let mut load = 0.0;
        b.iter(|| {
            t += 1.0e-3;
            load = if load > 0.0 { 0.0 } else { 1.0e6 };
            app.set_competition_sg2(SimTime::from_secs(t), load)
                .unwrap();
            app.remos_get_flow(black_box("User1000"), SERVER_GROUP_1)
                .unwrap()
        })
    });
    group.finish();

    // The 300 s control-vs-adaptive comparison at 2,000 clients — the run CI
    // must complete without timing out — plus a manual ticks/sec figure for
    // the archived JSON.
    let grid = large_grid();
    let schedule = ExperimentSchedule::by_name("step", &grid, 300.0).expect("step schedule exists");
    let started = std::time::Instant::now();
    let comparison =
        Comparison::run_with(grid, FrameworkConfig::adaptive(), Some(&schedule), 300.0)
            .expect("large-scale comparison runs");
    let wall = started.elapsed().as_secs_f64();
    let ticks = 2.0 * 300.0 / 5.0; // both runs, one tick per 5 s period
    let ticks_per_sec = ticks / wall;
    println!(
        "[large-scale] 300 s control-vs-adaptive comparison: {wall:.1} s wall, \
         {ticks_per_sec:.1} ticks/s (control violations {:.3}, adaptive {:.3}, {} repairs)",
        comparison.control.summary.fraction_latency_above_bound,
        comparison.adaptive.summary.fraction_latency_above_bound,
        comparison.adaptive.summary.repairs_completed,
    );

    // The same 300 s comparison under the group-level planner — the run the
    // acceptance gate watches: at 2,000 clients the per-element strategies
    // tie with control (~0.88 violation fraction both), while the planner's
    // bulk tactics must land strictly below control.
    let grid = large_grid();
    let schedule = ExperimentSchedule::by_name("step", &grid, 300.0).expect("step schedule exists");
    let planned_config = FrameworkConfig::by_name("plannedRepair").expect("preset exists");
    let started = std::time::Instant::now();
    let planned = Comparison::run_with(grid, planned_config, Some(&schedule), 300.0)
        .expect("planned large-scale comparison runs");
    let planned_wall = started.elapsed().as_secs_f64();
    let planned_fraction = planned.adaptive.summary.fraction_latency_above_bound;
    let control_fraction = planned.control.summary.fraction_latency_above_bound;
    assert!(
        planned_fraction < control_fraction,
        "plannedRepair ({planned_fraction:.3}) must beat control ({control_fraction:.3}) at scale"
    );
    println!(
        "[large-scale] 300 s plannedRepair comparison: {planned_wall:.1} s wall \
         (control violations {control_fraction:.3}, planned {planned_fraction:.3}, \
         {} repairs, {} client moves)",
        planned.adaptive.summary.repairs_completed, planned.adaptive.summary.client_moves,
    );

    // The fleet-scale gate: the 50,000-client 300 s control-vs-plannedRepair
    // comparison must finish in *less* wall time than the 2,000-client one.
    // Aggregate demand rows, class-shared probes, and the indexed model keep
    // per-tick and per-repair cost a function of class count rather than
    // client count, so 25× the clients must not cost 1× the wall clock.
    let fleet_grid = GridConfig::with_testbed(TestbedSpec::large_scale_50k());
    let fleet_clients = TestbedSpec::large_scale_50k().num_clients();
    let schedule =
        ExperimentSchedule::by_name("step", &fleet_grid, 300.0).expect("step schedule exists");
    let fleet_config = FrameworkConfig::by_name("plannedRepair").expect("preset exists");
    let started = std::time::Instant::now();
    let fleet = Comparison::run_with(fleet_grid, fleet_config, Some(&schedule), 300.0)
        .expect("fleet-scale comparison runs");
    let fleet_wall = started.elapsed().as_secs_f64();
    assert!(
        fleet_wall < planned_wall,
        "the {fleet_clients}-client comparison ({fleet_wall:.1} s) must run faster than \
         the 2,000-client one ({planned_wall:.1} s)"
    );
    println!(
        "[large-scale] 300 s fleet-scale ({fleet_clients} clients) plannedRepair comparison: \
         {fleet_wall:.1} s wall (2,000-client: {planned_wall:.1} s; {} repairs, {} client moves)",
        fleet.adaptive.summary.repairs_completed, fleet.adaptive.summary.client_moves,
    );

    // The 100,000-client gate: the doubled fleet must complete its 300 s
    // plannedRepair comparison in bounded wall time. Per-tick costs are
    // class-count-bound, but the class count itself grows with the fleet
    // (1,563 reps vs 783 at 50k) and the workload generator still draws
    // per-client arrivals, so the honest gate is a sub-quadratic bound
    // relative to the 50k run rather than parity with the 2,000-client one.
    let fleet100k_grid = GridConfig::with_testbed(TestbedSpec::large_scale_100k());
    let fleet100k_clients = TestbedSpec::large_scale_100k().num_clients();
    let schedule =
        ExperimentSchedule::by_name("step", &fleet100k_grid, 300.0).expect("step schedule exists");
    let fleet100k_config = FrameworkConfig::by_name("plannedRepair").expect("preset exists");
    let started = std::time::Instant::now();
    let fleet100k = Comparison::run_with(fleet100k_grid, fleet100k_config, Some(&schedule), 300.0)
        .expect("100k comparison runs");
    let fleet100k_wall = started.elapsed().as_secs_f64();
    assert!(
        fleet100k_wall < 8.0 * fleet_wall,
        "the {fleet100k_clients}-client comparison ({fleet100k_wall:.1} s) must stay within \
         8x the {fleet_clients}-client one ({fleet_wall:.1} s): 2x the clients must not \
         cost a quadratic blowup"
    );
    println!(
        "[large-scale] 300 s 100k-fleet ({fleet100k_clients} clients) plannedRepair comparison: \
         {fleet100k_wall:.1} s wall (50k fleet: {fleet_wall:.1} s; {} repairs, {} client moves)",
        fleet100k.adaptive.summary.repairs_completed, fleet100k.adaptive.summary.client_moves,
    );

    let out = std::env::var("LARGE_SCALE_BENCH_OUT")
        .unwrap_or_else(|_| "large_scale_bench.json".to_string());
    let json = serde_json::json!({
        "testbed": "large-scale",
        "clients": TestbedSpec::large_scale().num_clients(),
        "comparison_duration_secs": 300.0,
        "comparison_wall_secs": wall,
        "ticks_per_sec": ticks_per_sec,
        "control_violation_fraction": comparison.control.summary.fraction_latency_above_bound,
        "adaptive_violation_fraction": comparison.adaptive.summary.fraction_latency_above_bound,
        "adaptive_repairs_completed": comparison.adaptive.summary.repairs_completed,
        "adaptive_completed_requests": comparison.adaptive.summary.latency.map(|s| s.count),
        "control_completed_requests": comparison.control.summary.latency.map(|s| s.count),
        "planned_comparison_wall_secs": planned_wall,
        "planned_violation_fraction": planned_fraction,
        "planned_repairs_completed": planned.adaptive.summary.repairs_completed,
        "planned_client_moves": planned.adaptive.summary.client_moves,
        "planned_completed_requests": planned.adaptive.summary.latency.map(|s| s.count),
        "probe_solves_per_snapshot_full": full_solves,
        "probe_solves_per_snapshot_class_shared": shared_solves,
        "fleet_clients": fleet_clients,
        "fleet_comparison_wall_secs": fleet_wall,
        "fleet_violation_fraction": fleet.adaptive.summary.fraction_latency_above_bound,
        "fleet_repairs_completed": fleet.adaptive.summary.repairs_completed,
        "fleet_client_moves": fleet.adaptive.summary.client_moves,
        "fleet_100k_clients": fleet100k_clients,
        "fleet_100k_comparison_wall_secs": fleet100k_wall,
        "fleet_100k_violation_fraction": fleet100k.adaptive.summary.fraction_latency_above_bound,
        "fleet_100k_repairs_completed": fleet100k.adaptive.summary.repairs_completed,
        "fleet_100k_client_moves": fleet100k.adaptive.summary.client_moves,
    });
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&json).expect("serialises"),
    )
    .expect("writes bench output");
    println!("[large-scale] wrote {out}");
}

criterion_group!(benches, bench_large_scale);
criterion_main!(benches);
