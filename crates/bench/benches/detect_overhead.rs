//! Detector overhead — the cost of leaving the anomaly detectors on.
//!
//! Runs the same small sweep matrix with the detectors off (the default:
//! `FrameworkConfig::detectors` is `None`, the tick skips the detect phase
//! entirely) and on (a `DetectorBank` per run: ring-buffer ingestion,
//! incremental window statistics, EWMA-residual and CUSUM scoring on every
//! gauge reading), interleaved, and gates the detector-on minimum at ≤10%
//! over the detector-off minimum. Minima are compared — not means — so a
//! scheduler hiccup in one sample cannot fail the gate; interleaving keeps
//! thermal/frequency drift from biasing either side.
//!
//! `DETECT_OVERHEAD_QUICK=1` shrinks the matrix for CI smoke runs.

use arch_adapt::sweep::{run_sweep, SweepSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn quick() -> bool {
    std::env::var("DETECT_OVERHEAD_QUICK").is_ok_and(|v| v == "1")
}

fn bench_spec(detectors: bool) -> SweepSpec {
    SweepSpec {
        topologies: vec!["paper".into(), "congested-core".into()],
        workloads: vec!["step".into()],
        strategies: vec!["adaptive".into()],
        durations_secs: vec![if quick() { 60.0 } else { 180.0 }],
        seeds: if quick() { vec![42] } else { vec![42, 7] },
        fault_profiles: vec!["none".into()],
        collect_metrics: false,
        detectors,
    }
}

fn run_once(spec: &SweepSpec) -> Duration {
    let started = Instant::now();
    black_box(run_sweep(black_box(spec), 1).expect("sweep runs"));
    started.elapsed()
}

/// The ≤10% overhead gate on interleaved minima.
fn assert_overhead_bounded() {
    let off_spec = bench_spec(false);
    let on_spec = bench_spec(true);
    // Warm both paths once (allocator caches, lazy path trees).
    run_once(&off_spec);
    run_once(&on_spec);
    let samples = if quick() { 3 } else { 5 };
    let mut off_min = Duration::MAX;
    let mut on_min = Duration::MAX;
    for _ in 0..samples {
        off_min = off_min.min(run_once(&off_spec));
        on_min = on_min.min(run_once(&on_spec));
    }
    let ratio = on_min.as_secs_f64() / off_min.as_secs_f64();
    println!(
        "[detect_overhead] detector-off min {:.1} ms, detector-on min {:.1} ms, ratio {ratio:.3}x",
        off_min.as_secs_f64() * 1e3,
        on_min.as_secs_f64() * 1e3,
    );
    assert!(
        ratio <= 1.10,
        "detector-on sweep is {ratio:.3}x the detector-off sweep — the detect layer must cost ≤10%"
    );
}

fn bench_detect_overhead(c: &mut Criterion) {
    assert_overhead_bounded();
    let mut group = c.benchmark_group("detect_overhead");
    group.sample_size(10);
    for (label, detectors) in [("detectors_off", false), ("detectors_on", true)] {
        let spec = bench_spec(detectors);
        group.bench_function(label, |b| {
            b.iter(|| {
                run_sweep(black_box(&spec), 1)
                    .expect("sweep runs")
                    .total_units
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detect_overhead);
criterion_main!(benches);
