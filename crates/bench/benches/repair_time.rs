//! §5.3 — "the time that it takes to effect a repair averages 30 seconds;
//! most of this time is spent in communicating to create and delete gauges."
//!
//! Reproduces the repair-time figure and its decomposition for the two repair
//! kinds (client move, add server), and the paper's proposed mitigations
//! (gauge caching/relocation, Remos pre-querying) as ablations. Also measures
//! the end-to-end repair durations observed during an adaptive run.

use arch_adapt::framework::FrameworkConfig;
use archmodel::style::ClientServerStyle;
use archmodel::Transaction;
use bench::run_figure7;
use criterion::{criterion_group, criterion_main, Criterion};
use repair::{add_server, move_client};
use translator::{translate, RepairCostModel};

fn repair_scripts() -> (Vec<translator::RuntimeOp>, Vec<translator::RuntimeOp>) {
    let model = ClientServerStyle::example_system("storage", 2, 3, 6).unwrap();
    let mut move_tx = Transaction::new(&model);
    move_client(&mut move_tx, "User3", "ServerGrp2").unwrap();
    let move_ops = translate(&model, move_tx.ops(), 10_000.0).unwrap();
    let mut add_tx = Transaction::new(&model);
    add_server(&mut add_tx, "ServerGrp1").unwrap();
    let add_ops = translate(&model, add_tx.ops(), 10_000.0).unwrap();
    (move_ops, add_ops)
}

fn print_repair_time_table() {
    let (move_ops, add_ops) = repair_scripts();
    let configs = [
        (
            "paper prototype (no gauge caching)",
            RepairCostModel::paper_defaults(),
        ),
        (
            "with gauge caching/relocation",
            RepairCostModel::with_gauge_caching(),
        ),
        (
            "without Remos pre-query",
            RepairCostModel::without_prequery(),
        ),
    ];
    println!("[repair-time] repair duration decomposition (seconds)");
    println!(
        "  {:40} {:>14} {:>14} {:>12}",
        "configuration", "move client", "add server", "gauge share"
    );
    for (label, model) in configs {
        println!(
            "  {:40} {:>14.1} {:>14.1} {:>11.0}%",
            label,
            model.total_duration(&move_ops),
            model.total_duration(&add_ops),
            model.gauge_share(&move_ops) * 100.0
        );
    }

    // Observed end-to-end repair durations during an adaptive run.
    let run = run_figure7("adaptive", FrameworkConfig::adaptive(), 900.0);
    println!(
        "[repair-time] observed during a 900 s adaptive run: {} repairs, mean {:.1} s, intervals {:?}",
        run.summary.repairs_completed,
        run.summary.mean_repair_duration_secs.unwrap_or(0.0),
        run.repair_intervals
    );
}

fn bench_repair_time(c: &mut Criterion) {
    print_repair_time_table();
    let model = ClientServerStyle::example_system("storage", 2, 3, 6).unwrap();
    c.bench_function("repair_time/plan_translate_cost", |b| {
        b.iter(|| {
            let mut tx = Transaction::new(&model);
            move_client(&mut tx, "User3", "ServerGrp2").unwrap();
            let ops = translate(&model, tx.ops(), 10_000.0).unwrap();
            RepairCostModel::paper_defaults().total_duration(&ops)
        })
    });
}

criterion_group!(benches, bench_repair_time);
criterion_main!(benches);
