//! Model-layer overhead: constraint checking and repair planning as the
//! architectural model grows.
//!
//! The paper argues that externalised, model-based adaptation is practical;
//! this bench quantifies the cost of the model-layer operations (constraint
//! evaluation over all clients, repair planning, style validation) for
//! deployments much larger than the six-client testbed.

use archmodel::style::{props, ClientServerStyle};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repair::{default_constraints, RepairEngine, StaticQuery};

fn sized_model(clients: usize) -> archmodel::System {
    let groups = (clients / 8).max(2);
    let mut model = ClientServerStyle::example_system("scaled", groups, 3, clients).unwrap();
    // Populate observations so constraints are evaluable; one client violates.
    let names: Vec<(archmodel::ComponentId, String)> = model
        .components_of_type(archmodel::style::CLIENT_T)
        .map(|(id, c)| (id, c.name.clone()))
        .collect();
    for (id, _) in &names {
        model
            .component_mut(*id)
            .unwrap()
            .properties
            .set(props::AVERAGE_LATENCY, 0.8);
    }
    model
        .component_mut(names[0].0)
        .unwrap()
        .properties
        .set(props::AVERAGE_LATENCY, 5.0);
    let group_ids: Vec<archmodel::ComponentId> = model
        .components_of_type(archmodel::style::SERVER_GROUP_T)
        .map(|(id, _)| id)
        .collect();
    for id in group_ids {
        model
            .component_mut(id)
            .unwrap()
            .properties
            .set(props::LOAD, 8i64);
    }
    let role_ids: Vec<archmodel::RoleId> = model.roles().map(|(id, _)| id).collect();
    for id in role_ids {
        model
            .role_mut(id)
            .unwrap()
            .properties
            .set(props::BANDWIDTH, 2.0e6);
    }
    model
}

fn print_scalability() {
    println!("[model-scalability] model-layer cost vs. deployment size");
    println!(
        "  {:>10} {:>12} {:>12} {:>14}",
        "clients", "components", "invariants", "violations"
    );
    for clients in [6usize, 24, 96, 384] {
        let model = sized_model(clients);
        let report = default_constraints().check(&model);
        println!(
            "  {:>10} {:>12} {:>12} {:>14}",
            clients,
            model.component_count(),
            report.evaluated,
            report.violations.len()
        );
    }
}

fn bench_scalability(c: &mut Criterion) {
    print_scalability();
    let constraints = default_constraints();
    let mut check_group = c.benchmark_group("model_scalability/constraint_check");
    for clients in [6usize, 24, 96, 384] {
        let model = sized_model(clients);
        check_group.bench_with_input(BenchmarkId::from_parameter(clients), &model, |b, model| {
            b.iter(|| constraints.check(model).violations.len())
        });
    }
    check_group.finish();

    let mut plan_group = c.benchmark_group("model_scalability/repair_plan");
    for clients in [6usize, 96] {
        let model = sized_model(clients);
        let report = constraints.check(&model);
        let query = StaticQuery::new()
            .with_spares("ServerGrp1", &["spare"])
            .with_bandwidth(&report.violations[0].subject_name, "ServerGrp2", 5.0e6);
        plan_group.bench_with_input(BenchmarkId::from_parameter(clients), &clients, |b, _| {
            b.iter(|| {
                let mut engine = RepairEngine::with_paper_defaults();
                matches!(
                    engine.plan(&model, &report, &query, 0.0),
                    repair::PlanOutcome::Plan(_)
                )
            })
        });
    }
    plan_group.finish();

    let mut validate_group = c.benchmark_group("model_scalability/style_validation");
    for clients in [6usize, 96, 384] {
        let model = sized_model(clients);
        validate_group.bench_with_input(
            BenchmarkId::from_parameter(clients),
            &model,
            |b, model| b.iter(|| ClientServerStyle::validate(model).len()),
        );
    }
    validate_group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
