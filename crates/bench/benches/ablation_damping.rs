//! Ablation (§5.3) — repair-effect delay and oscillation.
//!
//! The paper observes oscillation (clients moving back and forth between
//! server groups) when repairs are issued before the previous repair's effect
//! is visible, and calls for a repair engine that accounts for settle time.
//! This bench compares the adaptive run with and without repair damping.

use arch_adapt::framework::FrameworkConfig;
use bench::run_figure7;
use criterion::{criterion_group, criterion_main, Criterion};

fn print_damping_ablation() {
    let duration = 900.0;
    let configs = [
        ("no damping (repair immediately on violation)", None),
        ("60 s settle window (default)", Some(60.0)),
        ("180 s settle window", Some(180.0)),
    ];
    println!("[ablation-damping] adaptive run, {duration:.0} s, varying the repair settle window");
    println!(
        "  {:46} {:>8} {:>8} {:>10} {:>12}",
        "configuration", "repairs", "moves", "%>bound", "mean rep (s)"
    );
    for (label, damping) in configs {
        let framework = FrameworkConfig {
            damping_secs: damping,
            ..FrameworkConfig::adaptive()
        };
        let run = run_figure7("adaptive", framework, duration);
        println!(
            "  {:46} {:>8} {:>8} {:>9.1}% {:>12.1}",
            label,
            run.summary.repairs_completed,
            run.summary.client_moves,
            run.summary.fraction_latency_above_bound * 100.0,
            run.summary.mean_repair_duration_secs.unwrap_or(0.0)
        );
    }
}

fn bench_damping(c: &mut Criterion) {
    print_damping_ablation();
    let mut group = c.benchmark_group("ablation_damping");
    group.sample_size(10);
    group.bench_function("adaptive_no_damping_short", |b| {
        b.iter(|| {
            run_figure7(
                "adaptive",
                FrameworkConfig {
                    damping_secs: None,
                    ..FrameworkConfig::adaptive()
                },
                180.0,
            )
            .summary
        })
    });
    group.finish();
}

criterion_group!(benches, bench_damping);
criterion_main!(benches);
