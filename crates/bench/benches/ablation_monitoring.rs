//! Ablation (§5.3) — monitoring traffic shares the network.
//!
//! "The same network is being used to monitor the system as to run it...
//! this produces a lag in the time when the bandwidth actually rises and the
//! time it is noticed and repaired. One way to address this is to use network
//! QoS techniques to prioritise monitoring traffic." This bench compares the
//! adaptive run with congestion-coupled monitoring against QoS-prioritised
//! monitoring, and against the gauge-caching repair-cost improvement.

use arch_adapt::framework::FrameworkConfig;
use bench::run_figure7;
use criterion::{criterion_group, criterion_main, Criterion};
use monitoring::GaugeLifecycleConfig;
use translator::RepairCostModel;

fn print_monitoring_ablation() {
    let duration = 900.0;
    println!("[ablation-monitoring] adaptive run, {duration:.0} s");
    println!(
        "  {:56} {:>8} {:>10} {:>14}",
        "configuration", "repairs", "%>bound", "1st repair (s)"
    );
    let configs: Vec<(&str, FrameworkConfig)> = vec![
        (
            "monitoring shares the congested network (paper)",
            FrameworkConfig::adaptive(),
        ),
        (
            "monitoring prioritised with QoS",
            FrameworkConfig {
                monitoring_qos: true,
                ..FrameworkConfig::adaptive()
            },
        ),
        (
            "QoS monitoring + gauge caching (both §5.3 fixes)",
            FrameworkConfig {
                monitoring_qos: true,
                cost_model: RepairCostModel::with_gauge_caching(),
                gauge_lifecycle: GaugeLifecycleConfig {
                    cache_gauges: true,
                    ..GaugeLifecycleConfig::default()
                },
                ..FrameworkConfig::adaptive()
            },
        ),
    ];
    for (label, framework) in configs {
        let run = run_figure7("adaptive", framework, duration);
        let first_repair = run.repair_intervals.first().map(|(s, _)| *s);
        println!(
            "  {:56} {:>8} {:>9.1}% {:>14}",
            label,
            run.summary.repairs_completed,
            run.summary.fraction_latency_above_bound * 100.0,
            first_repair
                .map(|t| format!("{t:.0}"))
                .unwrap_or_else(|| "-".to_string())
        );
    }
}

fn bench_monitoring(c: &mut Criterion) {
    print_monitoring_ablation();
    let mut group = c.benchmark_group("ablation_monitoring");
    group.sample_size(10);
    group.bench_function("qos_monitoring_short", |b| {
        b.iter(|| {
            run_figure7(
                "adaptive",
                FrameworkConfig {
                    monitoring_qos: true,
                    ..FrameworkConfig::adaptive()
                },
                180.0,
            )
            .summary
        })
    });
    group.finish();
}

criterion_group!(benches, bench_monitoring);
criterion_main!(benches);
