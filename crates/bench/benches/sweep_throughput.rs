//! Sweep throughput — the parallel scenario-sweep harness.
//!
//! Benchmarks `run_sweep` over a fixed small matrix at increasing worker
//! counts. The sweep is embarrassingly parallel (one control/adaptive
//! comparison per unit, no shared state beyond the result slots), so on a
//! multi-core host the 4-worker run should complete the same matrix well over
//! 1.5× faster than the 1-worker run; on a single-core host the counts
//! degrade gracefully to serial execution. The report is asserted
//! bit-identical across worker counts on every sample — the bench doubles as
//! a determinism check.

use arch_adapt::sweep::{run_sweep, SweepSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_spec() -> SweepSpec {
    SweepSpec {
        topologies: vec!["paper".into(), "congested-core".into()],
        workloads: vec!["step".into(), "flash-crowd".into()],
        strategies: vec!["adaptive".into()],
        durations_secs: vec![120.0],
        seeds: vec![42, 7],
        fault_profiles: vec!["none".into()],
        collect_metrics: false,
        detectors: false,
    }
}

fn bench_sweep(c: &mut Criterion) {
    let spec = bench_spec();
    let reference = run_sweep(&spec, 1).expect("sweep runs").to_json_string();
    println!(
        "[sweep] matrix: {} cells x {} seeds = {} units of {:.0} s; host parallelism: {}",
        spec.cells().len(),
        spec.seeds.len(),
        spec.total_units(),
        spec.durations_secs[0],
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let mut group = c.benchmark_group("sweep_throughput");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{workers}_workers")),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let report = run_sweep(black_box(&spec), workers).expect("sweep runs");
                    assert_eq!(
                        report.to_json_string(),
                        reference,
                        "report must be bit-identical at {workers} workers"
                    );
                    report.total_units
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
