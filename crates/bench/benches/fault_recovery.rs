//! Fault recovery — MTTR of the failover tactic.
//!
//! Injects the `server-crash-midrun` profile (two of Server Group 1's three
//! replicas crash) into a shortened adaptive run and measures the wall-clock
//! cost of the simulation plus the recovered MTTR. Every sample asserts that
//! the failover repair actually recovered the service: the MTTR must exist
//! and stay well under the remaining run time, and the crash must be
//! repaired through the `failoverServerGroup` tactic (visible as completed
//! repairs after the onset).

use arch_adapt::experiment::{run_with_schedule_and_faults, ExperimentConfig};
use arch_adapt::FrameworkConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use faultsim::{fault_profile_by_name, Resilience};
use gridapp::GridConfig;
use std::hint::black_box;

const DURATION_SECS: f64 = 600.0;

fn mttr_of_failover(seed: u64) -> f64 {
    let grid = GridConfig {
        seed,
        ..GridConfig::default()
    };
    let schedule =
        fault_profile_by_name("server-crash-midrun", DURATION_SECS).expect("profile resolves");
    let result = run_with_schedule_and_faults(
        "adaptive",
        ExperimentConfig {
            grid,
            framework: FrameworkConfig::adaptive(),
            duration_secs: DURATION_SECS,
        },
        None,
        Some(&schedule),
    )
    .expect("run succeeds");
    let resilience = Resilience::of(
        &result.metrics.pooled_latency(),
        DURATION_SECS,
        grid.max_latency_secs,
        10.0,
        &result.fault_onsets,
    );
    assert!(
        result.summary.repairs_completed >= 1,
        "the crash must trigger at least one repair"
    );
    let mttr = resilience
        .mttr_secs
        .expect("the failover tactic must recover the service");
    assert!(
        mttr < DURATION_SECS * 0.6,
        "recovery must finish well before the run ends: MTTR {mttr:.0} s"
    );
    mttr
}

fn bench_fault_recovery(c: &mut Criterion) {
    println!(
        "[fault_recovery] MTTR of the failover tactic at seed 42: {:.0} s (simulated)",
        mttr_of_failover(42)
    );
    let mut group = c.benchmark_group("fault_recovery");
    group.sample_size(10);
    group.bench_function("failover_mttr_600s", |b| {
        b.iter(|| mttr_of_failover(black_box(42)))
    });
    group.finish();
}

criterion_group!(benches, bench_fault_recovery);
criterion_main!(benches);
