//! Figures 8–10 — the control run (no adaptation): average latency, server
//! load (queue length), and available bandwidth over the 30-minute workload.
//!
//! The full-length run is executed once and its series printed; Criterion
//! measures a reduced-length control run.

use arch_adapt::framework::FrameworkConfig;
use bench::{figure_duration, print_run_figures, run_figure7, SHORT_RUN_SECS};
use criterion::{criterion_group, criterion_main, Criterion};

fn reproduce_figures() {
    let duration = figure_duration();
    println!("[fig08-10] control run ({duration:.0} s, adaptation disabled)");
    let run = run_figure7("control", FrameworkConfig::control(), duration);
    print_run_figures(
        &run,
        "fig08-latency-control",
        "fig09-load-control",
        "fig10-bandwidth-control",
    );
    // The paper's observation: once latency exceeds 2 s (~140 s into the run
    // for the affected clients) it never recovers in the control run.
    let pooled = run.metrics.pooled_latency();
    let late_fraction = pooled
        .window(duration * 0.5, duration)
        .fraction_above(run.latency_bound_secs);
    println!(
        "[fig08-latency-control] fraction above bound in the second half of the run: {late_fraction:.2}"
    );
}

fn bench_control(c: &mut Criterion) {
    reproduce_figures();
    let mut group = c.benchmark_group("fig08_10");
    group.sample_size(10);
    group.bench_function("control_run_short", |b| {
        b.iter(|| run_figure7("control", FrameworkConfig::control(), SHORT_RUN_SECS).summary)
    });
    group.finish();
}

criterion_group!(benches, bench_control);
criterion_main!(benches);
