//! Figure 7 — the bandwidth-competition and server-load generation schedule.
//!
//! Prints the schedule's value at every phase of the run (the stepping
//! functions of Figure 7) and benchmarks schedule evaluation and application.

use bench::SHORT_RUN_SECS;
use criterion::{criterion_group, criterion_main, Criterion};
use gridapp::{ExperimentSchedule, GridApp, GridConfig, LINK_CAPACITY_BPS};
use simnet::SimTime;
use std::hint::black_box;

fn print_figure7() {
    let config = GridConfig::default();
    let schedule = ExperimentSchedule::figure7(&config);
    println!("[fig07] Figure 7 workload schedule (values in force at sample times)");
    println!(
        "  {:>8} {:>22} {:>22} {:>14} {:>16}",
        "t (s)", "avail BW C3/4<->SG1", "avail BW C3/4<->SG2", "req rate (1/s)", "response (bytes)"
    );
    for t in [
        0.0, 60.0, 120.0, 300.0, 600.0, 900.0, 1200.0, 1500.0, 1800.0,
    ] {
        println!(
            "  {:>8.0} {:>22.0} {:>22.0} {:>14.1} {:>16.0}",
            t,
            LINK_CAPACITY_BPS - schedule.competition_sg1.value_at(t),
            LINK_CAPACITY_BPS - schedule.competition_sg2.value_at(t),
            schedule.request_rate.value_at(t),
            schedule.response_bytes.value_at(t),
        );
    }
    println!("  phase changes at: {:?}", schedule.change_points());
}

fn bench_workload(c: &mut Criterion) {
    print_figure7();
    let config = GridConfig::default();
    let schedule = ExperimentSchedule::figure7(&config);

    c.bench_function("fig07/schedule_evaluation", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for t in 0..1800 {
                acc += schedule.competition_sg1.value_at(black_box(t as f64));
                acc += schedule.request_rate.value_at(black_box(t as f64));
            }
            acc
        })
    });

    let mut group = c.benchmark_group("fig07");
    group.sample_size(10);
    group.bench_function("apply_schedule_to_app", |b| {
        b.iter(|| {
            let mut app = GridApp::build(config).expect("app builds");
            for &t in &[0.0, 120.0] {
                app.advance(SimTime::from_secs(t));
                schedule.apply(&mut app, t).expect("schedule applies");
            }
            app.advance(SimTime::from_secs(black_box(SHORT_RUN_SECS)));
            app.in_flight()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_workload);
criterion_main!(benches);
