//! Table 1 — the environment-manager operators and queries.
//!
//! Exercises every runtime operator against a live application and benchmarks
//! its execution, printing the operator/query inventory the table lists.

use criterion::{criterion_group, criterion_main, Criterion};
use gridapp::{GridApp, GridConfig, SERVER_GROUP_1, SERVER_GROUP_2};
use simnet::SimTime;
use std::hint::black_box;

fn print_table1() {
    println!("[table1] Environment manager operators and queries");
    for (op, description) in [
        (
            "createReqQueue()",
            "adds a logical request queue to the request-queue machine",
        ),
        (
            "findServer([cli_ip, bw_thresh])",
            "finds a spare server with at least bw_thresh bandwidth to the client",
        ),
        (
            "moveClient(ReqQ newQ)",
            "moves a client to the new request queue",
        ),
        (
            "connectServer(Server srv, ReqQ to)",
            "configures a server to pull requests from the given queue",
        ),
        ("activateServer()", "the server begins pulling requests"),
        ("deactivateServer()", "the server stops pulling requests"),
        (
            "remos_get_flow(clIP, svIP)",
            "predicted bandwidth between two machines",
        ),
    ] {
        println!("  {op:36} {description}");
    }
}

fn warmed_app() -> GridApp {
    let mut app = GridApp::build(GridConfig::default()).expect("app builds");
    app.advance(SimTime::from_secs(60.0));
    app
}

fn bench_operators(c: &mut Criterion) {
    print_table1();
    let mut group = c.benchmark_group("table1");

    group.bench_function("remos_get_flow", |b| {
        let app = warmed_app();
        b.iter(|| {
            app.remos_get_flow(black_box("User3"), SERVER_GROUP_1)
                .unwrap()
        })
    });

    group.bench_function("find_server", |b| {
        let app = warmed_app();
        b.iter(|| app.find_server(Some(black_box("User3")), 10_000.0))
    });

    group.bench_function("move_client_round_trip", |b| {
        let mut app = warmed_app();
        b.iter(|| {
            app.move_client("User3", SERVER_GROUP_2).unwrap();
            app.move_client("User3", SERVER_GROUP_1).unwrap();
        })
    });

    group.bench_function("activate_deactivate_server", |b| {
        let mut app = warmed_app();
        app.connect_server("S4", SERVER_GROUP_1).unwrap();
        b.iter(|| {
            app.activate_server("S4").unwrap();
            app.deactivate_server("S4").unwrap();
        })
    });

    group.bench_function("create_req_queue", |b| {
        let mut app = warmed_app();
        b.iter(|| app.create_req_queue(black_box("ServerGrp3")))
    });
    group.finish();
}

criterion_group!(benches, bench_operators);
criterion_main!(benches);
