//! Figures 11–13 — the adaptive run: average latency, available bandwidth,
//! and server load under repair, plus the repair-duration bars.
//!
//! The full-length run is executed once and its series printed; Criterion
//! measures a reduced-length adaptive run.

use arch_adapt::framework::FrameworkConfig;
use bench::{figure_duration, print_run_figures, run_figure7, SHORT_RUN_SECS};
use criterion::{criterion_group, criterion_main, Criterion};

fn reproduce_figures() {
    let duration = figure_duration();
    println!("[fig11-13] adaptive run ({duration:.0} s, full framework)");
    let adaptive = run_figure7("adaptive", FrameworkConfig::adaptive(), duration);
    print_run_figures(
        &adaptive,
        "fig11-latency-adaptive",
        "fig13-load-adaptive",
        "fig12-bandwidth-adaptive",
    );
    println!(
        "[fig11-13] repair intervals (the bars at the top of the paper's figures): {:?}",
        adaptive.repair_intervals
    );

    // Headline comparison against the control run (paper §5.2): the adaptive
    // run spends far less of the run above the 2 s bound.
    let control = run_figure7("control", FrameworkConfig::control(), duration);
    println!(
        "[fig11-13] fraction of requests above the bound: control {:.1}% vs adaptive {:.1}%",
        control.summary.fraction_latency_above_bound * 100.0,
        adaptive.summary.fraction_latency_above_bound * 100.0
    );
}

fn bench_adaptive(c: &mut Criterion) {
    reproduce_figures();
    let mut group = c.benchmark_group("fig11_13");
    group.sample_size(10);
    group.bench_function("adaptive_run_short", |b| {
        b.iter(|| run_figure7("adaptive", FrameworkConfig::adaptive(), SHORT_RUN_SECS).summary)
    });
    group.finish();
}

criterion_group!(benches, bench_adaptive);
criterion_main!(benches);
