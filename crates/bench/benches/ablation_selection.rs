//! Ablation (§7) — repair-selection policies.
//!
//! The paper's experiment repaired the first client that reported an error
//! and prioritised server-load repairs; §7 proposes repairing the client with
//! the worst latency first and choosing the tactic that contributes most to
//! the latency. This bench compares those policies.

use arch_adapt::framework::FrameworkConfig;
use bench::run_figure7;
use criterion::{criterion_group, criterion_main, Criterion};
use repair::SelectionPolicy;

fn print_selection_ablation() {
    let duration = 900.0;
    println!("[ablation-selection] adaptive run, {duration:.0} s, varying repair selection");
    println!(
        "  {:52} {:>8} {:>8} {:>8} {:>10}",
        "configuration", "repairs", "moves", "servers", "%>bound"
    );
    let configs = [
        (
            "first reported violation, load repair first (paper)",
            SelectionPolicy::FirstReported,
            false,
        ),
        (
            "worst-latency client first, load repair first",
            SelectionPolicy::WorstLatency,
            false,
        ),
        (
            "first reported violation, bandwidth repair first",
            SelectionPolicy::FirstReported,
            true,
        ),
        (
            "worst-latency client first, bandwidth repair first",
            SelectionPolicy::WorstLatency,
            true,
        ),
    ];
    for (label, selection, bandwidth_first) in configs {
        let framework = FrameworkConfig {
            selection,
            bandwidth_first,
            ..FrameworkConfig::adaptive()
        };
        let run = run_figure7("adaptive", framework, duration);
        println!(
            "  {:52} {:>8} {:>8} {:>8} {:>9.1}%",
            label,
            run.summary.repairs_completed,
            run.summary.client_moves,
            run.summary.servers_activated,
            run.summary.fraction_latency_above_bound * 100.0
        );
    }
}

fn bench_selection(c: &mut Criterion) {
    print_selection_ablation();
    let mut group = c.benchmark_group("ablation_selection");
    group.sample_size(10);
    group.bench_function("worst_latency_short", |b| {
        b.iter(|| {
            run_figure7(
                "adaptive",
                FrameworkConfig {
                    selection: SelectionPolicy::WorstLatency,
                    ..FrameworkConfig::adaptive()
                },
                180.0,
            )
            .summary
        })
    });
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
