//! Design-time provisioning of the paper's example deployment.
//!
//! The paper's requirements and assumptions (§5):
//!
//! * the maximum average latency experienced by clients must be < 2 seconds,
//! * client requests are small (0.5 KB) compared to server responses (20 KB),
//! * the aggregate arrival rate of requests is about six per second.
//!
//! From these inputs the authors *calculated that an initial starting point of
//! 3 replicated servers in one server group would be sufficient to serve our
//! six clients, and that the bandwidth between the clients and servers should
//! not be less than 10 Kbps*. This module reproduces that calculation.

use crate::mmc::MmcQueue;
use serde::{Deserialize, Serialize};

/// Inputs to the provisioning analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProvisioningInput {
    /// Aggregate request arrival rate (requests per second). Paper: 6.
    pub arrival_rate: f64,
    /// Per-server service rate (requests per second).
    pub service_rate: f64,
    /// Latency bound the clients must experience (seconds). Paper: 2.
    pub max_latency: f64,
    /// Average request size in bytes. Paper: 0.5 KB.
    pub request_bytes: f64,
    /// Average response size in bytes. Paper: 20 KB.
    pub response_bytes: f64,
    /// Fraction of the latency budget allowed for network transfer (the rest
    /// is queueing + service).
    pub network_budget_fraction: f64,
}

impl Default for ProvisioningInput {
    fn default() -> Self {
        ProvisioningInput {
            arrival_rate: 6.0,
            service_rate: 2.5,
            max_latency: 2.0,
            request_bytes: 512.0,
            response_bytes: 20_480.0,
            network_budget_fraction: 0.5,
        }
    }
}

/// The minimum-bandwidth requirement derived from the response size and the
/// share of the latency budget assigned to the network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthRequirement {
    /// Minimum acceptable bandwidth in bits per second.
    pub min_bandwidth_bps: f64,
    /// The network-time budget used in the derivation (seconds).
    pub network_budget_secs: f64,
}

/// The provisioning plan: how many replicas and what bandwidth threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProvisioningPlan {
    /// Number of replicated servers required.
    pub servers: usize,
    /// Predicted mean response time with that many servers (seconds).
    pub predicted_response_time: f64,
    /// Predicted mean queue length.
    pub predicted_queue_length: f64,
    /// The derived bandwidth threshold.
    pub bandwidth: BandwidthRequirement,
}

/// Derives the minimum bandwidth such that transferring one response within
/// the network share of the latency budget is possible.
pub fn min_bandwidth(input: &ProvisioningInput) -> BandwidthRequirement {
    let budget = (input.max_latency * input.network_budget_fraction).max(1e-6);
    let bits = (input.request_bytes + input.response_bytes) * 8.0;
    BandwidthRequirement {
        min_bandwidth_bps: bits / budget,
        network_budget_secs: budget,
    }
}

/// Finds the smallest number of servers whose predicted response time
/// (queueing + service) fits within the non-network share of the latency
/// budget, then derives the bandwidth threshold.
///
/// Returns `None` if even `max_servers` replicas cannot meet the bound.
pub fn provision(input: &ProvisioningInput, max_servers: usize) -> Option<ProvisioningPlan> {
    let compute_budget = input.max_latency * (1.0 - input.network_budget_fraction);
    for servers in 1..=max_servers {
        let queue = MmcQueue::new(input.arrival_rate, input.service_rate, servers);
        let Some(response) = queue.expected_response_time() else {
            continue; // unstable with this few servers
        };
        if response <= compute_budget {
            return Some(ProvisioningPlan {
                servers,
                predicted_response_time: response,
                predicted_queue_length: queue.expected_queue_length().unwrap_or(f64::INFINITY),
                bandwidth: min_bandwidth(input),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_inputs_provision_three_servers() {
        // With the paper's arrival rate (6/s), a 2 s latency bound, and a
        // service rate of 2.5 req/s per server, three replicas are the
        // smallest stable configuration that meets the compute budget —
        // matching the paper's "initial starting point of 3 replicated
        // servers".
        let plan = provision(&ProvisioningInput::default(), 10).unwrap();
        assert_eq!(plan.servers, 3);
        assert!(plan.predicted_response_time <= 1.0);
    }

    #[test]
    fn paper_inputs_yield_at_least_10kbps() {
        // 20.5 KB ≈ 168 Kbit over a 1 s network budget ⇒ ~168 Kbps, well above
        // the paper's 10 Kbps floor (which also folds in request pipelining);
        // the important property is that the derived threshold is ≥ 10 Kbps.
        let req = min_bandwidth(&ProvisioningInput::default());
        assert!(req.min_bandwidth_bps >= 10_000.0);
    }

    #[test]
    fn tighter_latency_needs_more_servers() {
        let relaxed = provision(&ProvisioningInput::default(), 20).unwrap();
        let tight = provision(
            &ProvisioningInput {
                max_latency: 1.0,
                ..ProvisioningInput::default()
            },
            20,
        )
        .unwrap();
        assert!(tight.servers >= relaxed.servers);
    }

    #[test]
    fn higher_load_needs_more_servers() {
        let base = provision(&ProvisioningInput::default(), 20).unwrap();
        let heavy = provision(
            &ProvisioningInput {
                arrival_rate: 24.0,
                ..ProvisioningInput::default()
            },
            20,
        )
        .unwrap();
        assert!(heavy.servers > base.servers);
    }

    #[test]
    fn impossible_bound_returns_none() {
        let plan = provision(
            &ProvisioningInput {
                max_latency: 0.5,
                service_rate: 1.0,
                network_budget_fraction: 0.9,
                ..ProvisioningInput::default()
            },
            3,
        );
        assert!(plan.is_none());
    }

    #[test]
    fn bandwidth_scales_with_response_size() {
        let small = min_bandwidth(&ProvisioningInput::default());
        let large = min_bandwidth(&ProvisioningInput {
            response_bytes: 200_000.0,
            ..ProvisioningInput::default()
        });
        assert!(large.min_bandwidth_bps > small.min_bandwidth_bps);
    }
}
