//! Design-time provisioning of the paper's example deployment.
//!
//! The paper's requirements and assumptions (§5):
//!
//! * the maximum average latency experienced by clients must be < 2 seconds,
//! * client requests are small (0.5 KB) compared to server responses (20 KB),
//! * the aggregate arrival rate of requests is about six per second.
//!
//! From these inputs the authors *calculated that an initial starting point of
//! 3 replicated servers in one server group would be sufficient to serve our
//! six clients, and that the bandwidth between the clients and servers should
//! not be less than 10 Kbps*. This module reproduces that calculation.

use crate::mmc::MmcQueue;
use serde::{Deserialize, Serialize};

/// Inputs to the provisioning analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProvisioningInput {
    /// Aggregate request arrival rate (requests per second). Paper: 6.
    pub arrival_rate: f64,
    /// Per-server service rate (requests per second).
    pub service_rate: f64,
    /// Latency bound the clients must experience (seconds). Paper: 2.
    pub max_latency: f64,
    /// Average request size in bytes. Paper: 0.5 KB.
    pub request_bytes: f64,
    /// Average response size in bytes. Paper: 20 KB.
    pub response_bytes: f64,
    /// Fraction of the latency budget allowed for network transfer (the rest
    /// is queueing + service).
    pub network_budget_fraction: f64,
}

impl Default for ProvisioningInput {
    fn default() -> Self {
        ProvisioningInput {
            arrival_rate: 6.0,
            service_rate: 2.5,
            max_latency: 2.0,
            request_bytes: 512.0,
            response_bytes: 20_480.0,
            network_budget_fraction: 0.5,
        }
    }
}

/// The minimum-bandwidth requirement derived from the response size and the
/// share of the latency budget assigned to the network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthRequirement {
    /// Minimum acceptable bandwidth in bits per second.
    pub min_bandwidth_bps: f64,
    /// The network-time budget used in the derivation (seconds).
    pub network_budget_secs: f64,
}

/// The provisioning plan: how many replicas and what bandwidth threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProvisioningPlan {
    /// Number of replicated servers required.
    pub servers: usize,
    /// Predicted mean response time with that many servers (seconds).
    pub predicted_response_time: f64,
    /// Predicted mean queue length.
    pub predicted_queue_length: f64,
    /// The derived bandwidth threshold.
    pub bandwidth: BandwidthRequirement,
}

/// Derives the minimum bandwidth such that transferring one response within
/// the network share of the latency budget is possible.
pub fn min_bandwidth(input: &ProvisioningInput) -> BandwidthRequirement {
    let budget = (input.max_latency * input.network_budget_fraction).max(1e-6);
    let bits = (input.request_bytes + input.response_bytes) * 8.0;
    BandwidthRequirement {
        min_bandwidth_bps: bits / budget,
        network_budget_secs: budget,
    }
}

/// Finds the smallest number of servers whose predicted response time
/// (queueing + service) fits within the non-network share of the latency
/// budget, then derives the bandwidth threshold.
///
/// Returns `None` if even `max_servers` replicas cannot meet the bound.
pub fn provision(input: &ProvisioningInput, max_servers: usize) -> Option<ProvisioningPlan> {
    let compute_budget = input.max_latency * (1.0 - input.network_budget_fraction);
    for servers in 1..=max_servers {
        let queue = MmcQueue::new(input.arrival_rate, input.service_rate, servers);
        let Some(response) = queue.expected_response_time() else {
            continue; // unstable with this few servers
        };
        if response <= compute_budget {
            return Some(ProvisioningPlan {
                servers,
                predicted_response_time: response,
                predicted_queue_length: queue.expected_queue_length().unwrap_or(f64::INFINITY),
                bandwidth: min_bandwidth(input),
            });
        }
    }
    None
}

/// A provisioning plan that additionally over-provisions replicas so the
/// service keeps meeting its latency bound at a target availability despite
/// replica failures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityPlan {
    /// The base latency-driven plan (its `servers` is the minimum live
    /// replica count the latency bound needs).
    pub base: ProvisioningPlan,
    /// Total replicas to deploy, including the failure head-room.
    pub servers_with_headroom: usize,
    /// Extra replicas added purely for availability.
    pub spares_for_availability: usize,
    /// Probability that at least `base.servers` replicas are live under
    /// independent per-replica availability — the plan's predicted service
    /// availability.
    pub predicted_availability: f64,
    /// The per-replica availability the plan assumed.
    pub replica_availability: f64,
    /// Mean time to repair of the measured fault runs the availability came
    /// from, if known — how long the head-room must carry the load before a
    /// failed replica returns.
    pub replica_mttr_secs: Option<f64>,
}

/// Probability that at least `need` of `total` independent replicas, each up
/// with probability `availability`, are live (binomial upper tail).
fn probability_at_least(total: usize, need: usize, availability: f64) -> f64 {
    let p = availability.clamp(0.0, 1.0);
    if need == 0 {
        return 1.0;
    }
    // Sum P[X = k] for k in need..=total, building the binomial pmf
    // iteratively to stay stable for the small replica counts involved.
    let mut pmf = vec![0.0f64; total + 1];
    pmf[0] = 1.0;
    for _ in 0..total {
        for k in (1..=total).rev() {
            pmf[k] = pmf[k] * (1.0 - p) + pmf[k - 1] * p;
        }
        pmf[0] *= 1.0 - p;
    }
    pmf[need..].iter().sum()
}

/// Fault-aware provisioning: finds the latency-driven base plan, then adds
/// replicas until the probability of keeping at least the base count alive —
/// with each replica independently up — meets `target_availability`.
///
/// The per-replica availability is taken from measured
/// [`faultsim::Resilience`] metrics (see [`provision_for_availability`]) or
/// supplied directly; `1.0` degenerates to the plain latency plan. Returns
/// `None` when the latency bound or the availability target cannot be met
/// within `max_servers` total replicas.
pub fn provision_with_availability(
    input: &ProvisioningInput,
    max_servers: usize,
    target_availability: f64,
    replica_availability: f64,
) -> Option<AvailabilityPlan> {
    let base = provision(input, max_servers)?;
    let availability = replica_availability.clamp(0.0, 1.0);
    let target = target_availability.clamp(0.0, 1.0);
    for total in base.servers..=max_servers {
        let predicted = probability_at_least(total, base.servers, availability);
        if predicted >= target {
            return Some(AvailabilityPlan {
                base,
                servers_with_headroom: total,
                spares_for_availability: total - base.servers,
                predicted_availability: predicted,
                replica_availability: availability,
                replica_mttr_secs: None,
            });
        }
    }
    None
}

/// [`provision_with_availability`] fed from measured resilience metrics: the
/// run's observed availability serves as the per-replica availability
/// estimate, and the measured MTTR is carried onto the plan
/// ([`AvailabilityPlan::replica_mttr_secs`]) as the window the head-room
/// must cover before a failed replica returns.
pub fn provision_for_availability(
    input: &ProvisioningInput,
    max_servers: usize,
    target_availability: f64,
    resilience: &faultsim::Resilience,
) -> Option<AvailabilityPlan> {
    let plan = provision_with_availability(
        input,
        max_servers,
        target_availability,
        resilience.availability,
    )?;
    Some(AvailabilityPlan {
        replica_mttr_secs: resilience.mttr_secs,
        ..plan
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_inputs_provision_three_servers() {
        // With the paper's arrival rate (6/s), a 2 s latency bound, and a
        // service rate of 2.5 req/s per server, three replicas are the
        // smallest stable configuration that meets the compute budget —
        // matching the paper's "initial starting point of 3 replicated
        // servers".
        let plan = provision(&ProvisioningInput::default(), 10).unwrap();
        assert_eq!(plan.servers, 3);
        assert!(plan.predicted_response_time <= 1.0);
    }

    #[test]
    fn paper_inputs_yield_at_least_10kbps() {
        // 20.5 KB ≈ 168 Kbit over a 1 s network budget ⇒ ~168 Kbps, well above
        // the paper's 10 Kbps floor (which also folds in request pipelining);
        // the important property is that the derived threshold is ≥ 10 Kbps.
        let req = min_bandwidth(&ProvisioningInput::default());
        assert!(req.min_bandwidth_bps >= 10_000.0);
    }

    #[test]
    fn tighter_latency_needs_more_servers() {
        let relaxed = provision(&ProvisioningInput::default(), 20).unwrap();
        let tight = provision(
            &ProvisioningInput {
                max_latency: 1.0,
                ..ProvisioningInput::default()
            },
            20,
        )
        .unwrap();
        assert!(tight.servers >= relaxed.servers);
    }

    #[test]
    fn higher_load_needs_more_servers() {
        let base = provision(&ProvisioningInput::default(), 20).unwrap();
        let heavy = provision(
            &ProvisioningInput {
                arrival_rate: 24.0,
                ..ProvisioningInput::default()
            },
            20,
        )
        .unwrap();
        assert!(heavy.servers > base.servers);
    }

    #[test]
    fn impossible_bound_returns_none() {
        let plan = provision(
            &ProvisioningInput {
                max_latency: 0.5,
                service_rate: 1.0,
                network_budget_fraction: 0.9,
                ..ProvisioningInput::default()
            },
            3,
        );
        assert!(plan.is_none());
    }

    #[test]
    fn availability_provisioning_adds_headroom_for_flaky_replicas() {
        // Perfect replicas need no head-room.
        let perfect =
            provision_with_availability(&ProvisioningInput::default(), 20, 0.999, 1.0).unwrap();
        assert_eq!(perfect.spares_for_availability, 0);
        assert_eq!(perfect.servers_with_headroom, perfect.base.servers);
        assert_eq!(perfect.predicted_availability, 1.0);

        // 90%-available replicas must over-provision to promise 99.9% of the
        // time at least the base three replicas live.
        let flaky =
            provision_with_availability(&ProvisioningInput::default(), 20, 0.999, 0.9).unwrap();
        assert!(flaky.spares_for_availability > 0, "{flaky:?}");
        assert!(flaky.predicted_availability >= 0.999);
        assert_eq!(flaky.base.servers, 3);
        // More nines need more spares.
        let five_nines =
            provision_with_availability(&ProvisioningInput::default(), 20, 0.99999, 0.9).unwrap();
        assert!(five_nines.servers_with_headroom >= flaky.servers_with_headroom);

        // An unreachable target within the replica budget yields None.
        assert!(
            provision_with_availability(&ProvisioningInput::default(), 4, 0.99999, 0.5).is_none()
        );
    }

    #[test]
    fn availability_provisioning_consumes_measured_resilience() {
        let resilience = faultsim::Resilience {
            availability: 0.85,
            downtime_secs: 45.0,
            mttr_secs: Some(30.0),
            violation_fraction_during_fault: 0.4,
        };
        let plan = provision_for_availability(&ProvisioningInput::default(), 20, 0.99, &resilience)
            .unwrap();
        assert_eq!(plan.replica_availability, 0.85);
        assert_eq!(plan.replica_mttr_secs, Some(30.0));
        assert!(plan.spares_for_availability > 0);
        assert!(plan.predicted_availability >= 0.99);
    }

    #[test]
    fn binomial_tail_is_sane() {
        assert_eq!(probability_at_least(3, 0, 0.5), 1.0);
        assert!((probability_at_least(1, 1, 0.9) - 0.9).abs() < 1e-12);
        // P[X >= 1] with X ~ B(2, 0.5) = 0.75.
        assert!((probability_at_least(2, 1, 0.5) - 0.75).abs() < 1e-12);
        // P[X >= 2] with X ~ B(3, 0.9) = 3·0.81·0.1 + 0.729 = 0.972.
        assert!((probability_at_least(3, 2, 0.9) - 0.972).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_scales_with_response_size() {
        let small = min_bandwidth(&ProvisioningInput::default());
        let large = min_bandwidth(&ProvisioningInput {
            response_bytes: 200_000.0,
            ..ProvisioningInput::default()
        });
        assert!(large.min_bandwidth_bps > small.min_bandwidth_bps);
    }
}
