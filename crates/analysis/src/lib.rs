//! # analysis — design-time performance analysis
//!
//! The paper derives its initial deployment (3 replicated servers in one
//! server group for six clients, and a 10 Kbps minimum client bandwidth) from
//! an architecture-level queueing analysis of the client/server style
//! (Spitznagel & Garlan, "Architecture-Based Performance Analysis"). This
//! crate reproduces that analysis: M/M/c queueing formulas, provisioning of
//! the replica count for a latency bound, and the minimum-bandwidth
//! derivation used to set the `minBandwidth` threshold.

#![warn(missing_docs)]

pub mod mmc;
pub mod provisioning;

pub use mmc::MmcQueue;
pub use provisioning::{
    provision, provision_for_availability, provision_with_availability, AvailabilityPlan,
    BandwidthRequirement, ProvisioningInput, ProvisioningPlan,
};
