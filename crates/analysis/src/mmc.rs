//! M/M/c queueing formulas (Erlang-C).
//!
//! A server group with `c` replicated servers pulling from one FIFO request
//! queue is modelled as an M/M/c queue: Poisson arrivals at rate λ,
//! exponential service times with rate μ per server. The analysis yields the
//! expected waiting time and queue length used to size the group.

use serde::{Deserialize, Serialize};

/// An M/M/c queueing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MmcQueue {
    /// Arrival rate λ (requests per second).
    pub arrival_rate: f64,
    /// Per-server service rate μ (requests per second).
    pub service_rate: f64,
    /// Number of servers c.
    pub servers: usize,
}

impl MmcQueue {
    /// Creates a model. Panics if any rate is non-positive or `servers == 0`.
    pub fn new(arrival_rate: f64, service_rate: f64, servers: usize) -> Self {
        assert!(arrival_rate > 0.0, "arrival rate must be positive");
        assert!(service_rate > 0.0, "service rate must be positive");
        assert!(servers > 0, "at least one server is required");
        MmcQueue {
            arrival_rate,
            service_rate,
            servers,
        }
    }

    /// Offered load a = λ/μ (Erlangs).
    pub fn offered_load(&self) -> f64 {
        self.arrival_rate / self.service_rate
    }

    /// Server utilisation ρ = λ/(cμ).
    pub fn utilization(&self) -> f64 {
        self.offered_load() / self.servers as f64
    }

    /// True when the queue is stable (ρ < 1).
    pub fn is_stable(&self) -> bool {
        self.utilization() < 1.0
    }

    /// Erlang-C: probability that an arriving request must wait.
    ///
    /// Returns `None` when the queue is unstable.
    pub fn probability_of_waiting(&self) -> Option<f64> {
        if !self.is_stable() {
            return None;
        }
        let a = self.offered_load();
        let c = self.servers;
        // Sum_{k=0}^{c-1} a^k / k!  computed iteratively for stability.
        let mut term = 1.0; // a^0 / 0!
        let mut sum = 1.0;
        for k in 1..c {
            term *= a / k as f64;
            sum += term;
        }
        // a^c / c!
        let ac_over_cfact = term * a / c as f64;
        let rho = self.utilization();
        let numerator = ac_over_cfact / (1.0 - rho);
        Some(numerator / (sum + numerator))
    }

    /// Expected waiting time in the queue (seconds), excluding service.
    pub fn expected_wait(&self) -> Option<f64> {
        let pw = self.probability_of_waiting()?;
        let c = self.servers as f64;
        Some(pw / (c * self.service_rate - self.arrival_rate))
    }

    /// Expected total response time (waiting + service), in seconds.
    pub fn expected_response_time(&self) -> Option<f64> {
        Some(self.expected_wait()? + 1.0 / self.service_rate)
    }

    /// Expected number of requests waiting in the queue (Lq).
    pub fn expected_queue_length(&self) -> Option<f64> {
        Some(self.expected_wait()? * self.arrival_rate)
    }

    /// Expected number of requests in the system (waiting + in service).
    pub fn expected_in_system(&self) -> Option<f64> {
        Some(self.expected_queue_length()? + self.offered_load())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_matches_closed_form() {
        // For c = 1 the Erlang-C model reduces to M/M/1: W = ρ/(μ-λ)/1,
        // Wq = ρ/(μ - λ), T = 1/(μ - λ).
        let q = MmcQueue::new(2.0, 5.0, 1);
        let rho: f64 = 0.4;
        assert!((q.utilization() - rho).abs() < 1e-12);
        let wq = rho / (5.0 - 2.0);
        assert!((q.expected_wait().unwrap() - wq).abs() < 1e-9);
        let t = 1.0 / (5.0 - 2.0);
        assert!((q.expected_response_time().unwrap() - t).abs() < 1e-9);
    }

    #[test]
    fn erlang_c_known_value() {
        // Classic example: λ=2/min, μ=1/min per server, c=3 ⇒ a=2, ρ=2/3,
        // P(wait) ≈ 0.4444.
        let q = MmcQueue::new(2.0, 1.0, 3);
        let pw = q.probability_of_waiting().unwrap();
        assert!((pw - 4.0 / 9.0).abs() < 1e-9, "pw={pw}");
    }

    #[test]
    fn unstable_queue_reports_none() {
        let q = MmcQueue::new(10.0, 1.0, 3);
        assert!(!q.is_stable());
        assert!(q.probability_of_waiting().is_none());
        assert!(q.expected_wait().is_none());
        assert!(q.expected_response_time().is_none());
    }

    #[test]
    fn adding_servers_reduces_waiting() {
        let w2 = MmcQueue::new(5.0, 3.0, 2).expected_wait().unwrap();
        let w3 = MmcQueue::new(5.0, 3.0, 3).expected_wait().unwrap();
        let w4 = MmcQueue::new(5.0, 3.0, 4).expected_wait().unwrap();
        assert!(w2 > w3 && w3 > w4);
    }

    #[test]
    fn queue_length_consistent_with_littles_law() {
        let q = MmcQueue::new(6.0, 2.5, 3);
        let lq = q.expected_queue_length().unwrap();
        let wq = q.expected_wait().unwrap();
        assert!((lq - 6.0 * wq).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_servers_rejected() {
        MmcQueue::new(1.0, 1.0, 0);
    }

    #[test]
    #[should_panic]
    fn non_positive_rate_rejected() {
        MmcQueue::new(0.0, 1.0, 1);
    }
}
